//! Anchor nodes: the quorum members managing full chain copies (§IV-A).
//!
//! One anchor acts as the sealing leader (the concept is consensus-
//! agnostic, §IV-A — leader selection would come from the configured
//! engine/quorum; the simulation pins it for determinism). All anchors:
//!
//! * apply sealed blocks from the leader,
//! * derive summary blocks **locally** (never from the wire),
//! * broadcast summary-hash sync checks and heal divergence by adopting
//!   the quorum chain ("traceable from its current status quo", §V-B3).

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use seldel_chain::{BlockKind, BlockNumber, BlockStore, Entry, EntryId, MemStore};
use seldel_core::{LedgerEvent, SelectiveLedger};
use seldel_crypto::Digest32;
use seldel_network::{Context, NodeId, SimNode};
use seldel_telemetry::{Counter, Gauge, Registry, TelemetrySnapshot};

use crate::messages::{NodeMessage, StatusQuo};

/// Counters describing an anchor's distributed behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnchorStats {
    /// Blocks sealed as leader.
    pub blocks_sealed: u64,
    /// Blocks applied from the leader.
    pub blocks_applied: u64,
    /// Blocks rejected (linkage errors — out of sync).
    pub blocks_rejected: u64,
    /// Sync checks sent.
    pub sync_checks_sent: u64,
    /// Sync-check mismatches observed.
    pub sync_mismatches: u64,
    /// Chains adopted from peers.
    pub chains_adopted: u64,
    /// Entries accepted into the mempool (leader only).
    pub entries_accepted: u64,
    /// Entries rejected at intake.
    pub entries_rejected: u64,
    /// Sealed blocks currently awaiting the durable watermark before
    /// their broadcast (announce-queue depth, sampled at
    /// [`AnchorNode::stats`] time).
    pub announce_queue_depth: u64,
    /// High-water mark of the announce queue.
    pub announce_queue_peak: u64,
    /// Synchronous durability barriers the leader was forced into
    /// because the commit stage lagged past the announce bound
    /// (backpressure stalls).
    pub fsync_stalls: u64,
    /// Blocks sealed while at least one earlier block was still awaiting
    /// durability — each one is a seal/fsync overlap the pipeline won.
    pub sealed_while_commit_pending: u64,
}

/// The registry-backed counters behind [`AnchorStats`]: each anchor owns
/// a **private** [`Registry`] (a process may run many nodes — a shared
/// global registry would merge their counts), with the handles resolved
/// once at construction so bumping one is a single relaxed `fetch_add`.
/// These record unconditionally, independent of the global
/// `SELDEL_TELEMETRY` switch — [`AnchorNode::stats`] predates the
/// telemetry layer and its exact values are pinned by tests.
#[derive(Debug)]
struct AnchorMetrics {
    registry: Registry,
    blocks_sealed: Arc<Counter>,
    blocks_applied: Arc<Counter>,
    blocks_rejected: Arc<Counter>,
    sync_checks_sent: Arc<Counter>,
    sync_mismatches: Arc<Counter>,
    chains_adopted: Arc<Counter>,
    entries_accepted: Arc<Counter>,
    entries_rejected: Arc<Counter>,
    announce_queue_depth: Arc<Gauge>,
    announce_queue_peak: Arc<Gauge>,
    fsync_stalls: Arc<Counter>,
    sealed_while_commit_pending: Arc<Counter>,
    /// Policy-engine counters live only in the private registry (visible
    /// via [`AnchorNode::telemetry`]): `AnchorStats` is a pinned shape.
    policy_plans_served: Arc<Counter>,
    policy_applies: Arc<Counter>,
    policy_requests_enqueued: Arc<Counter>,
}

impl AnchorMetrics {
    fn new() -> AnchorMetrics {
        let registry = Registry::new();
        AnchorMetrics {
            blocks_sealed: registry.counter("anchor.blocks_sealed"),
            blocks_applied: registry.counter("anchor.blocks_applied"),
            blocks_rejected: registry.counter("anchor.blocks_rejected"),
            sync_checks_sent: registry.counter("anchor.sync_checks_sent"),
            sync_mismatches: registry.counter("anchor.sync_mismatches"),
            chains_adopted: registry.counter("anchor.chains_adopted"),
            entries_accepted: registry.counter("anchor.entries_accepted"),
            entries_rejected: registry.counter("anchor.entries_rejected"),
            announce_queue_depth: registry.gauge("anchor.announce_queue.depth"),
            announce_queue_peak: registry.gauge("anchor.announce_queue.peak"),
            fsync_stalls: registry.counter("anchor.fsync_stalls"),
            sealed_while_commit_pending: registry.counter("anchor.sealed_while_commit_pending"),
            policy_plans_served: registry.counter("anchor.policy.plans_served"),
            policy_applies: registry.counter("anchor.policy.applies"),
            policy_requests_enqueued: registry.counter("anchor.policy.requests_enqueued"),
            registry,
        }
    }
}

/// Default bound on the leader's sealed-but-unannounced queue. When more
/// blocks than this await the durable watermark, the leader stops
/// pipelining and runs a synchronous durability barrier (backpressure) —
/// the commit stage may lag the sealer, but never unboundedly.
pub const DEFAULT_ANNOUNCE_BOUND: usize = 8;

/// An anchor node wrapping a [`SelectiveLedger`], generic over the
/// ledger's storage backend (replicas can run [`MemStore`] or the
/// segmented store interchangeably — Σ hashes are backend-independent).
///
/// # Staged sealing (durable watermark)
///
/// The leader's flow is staged: intake fills the sharded mempool, the
/// seal stage drains it into blocks, and the *commit* stage — the
/// storage backend's fsync machinery — runs behind a *durable
/// watermark* ([`SelectiveLedger::durable_tip`]). A sealed block is
/// queued, not broadcast: `NewBlock` / Σ `SyncCheck` messages go out
/// only once the watermark reaches the block, so **replicas never see a
/// block the leader could still lose in a crash**. On a pipelined
/// durable backend
/// ([`SelectiveLedgerBuilder::pipelined_commits`](seldel_core::SelectiveLedgerBuilder::pipelined_commits))
/// the leader seals block N+1 while block N's fsync is in flight; when
/// the announce queue outgrows its bound
/// ([`DEFAULT_ANNOUNCE_BOUND`] / [`AnchorNode::with_announce_bound`])
/// the leader stalls on a synchronous barrier instead — bounded queue,
/// explicit backpressure. In-memory backends report no durability lag,
/// so their broadcasts stay immediate.
///
/// # Restart
///
/// An anchor backed by a durable store survives process restarts: reopen
/// the ledger with
/// [`SelectiveLedgerBuilder::on_disk`](seldel_core::SelectiveLedgerBuilder::on_disk)
/// and wrap it in a fresh `AnchorNode` — recovery re-derives all Σ state
/// from the replayed blocks, sealing resumes at the recovered tip, and
/// peers that ran ahead heal the gap through the ordinary
/// reject → sync-request → adopt path.
#[derive(Debug)]
pub struct AnchorNode<S: BlockStore = MemStore> {
    ledger: SelectiveLedger<S>,
    leader: NodeId,
    me: Option<NodeId>,
    block_interval_ms: u64,
    metrics: AnchorMetrics,
    /// Last summary (number, hash) derived locally.
    last_summary: Option<(BlockNumber, Digest32)>,
    /// Sealed-but-unannounced block numbers (leader only): broadcast of
    /// each waits for the durable watermark to reach it.
    announce_queue: VecDeque<BlockNumber>,
    /// Queue depth past which the leader runs a synchronous barrier.
    announce_bound: usize,
    /// Event log retained for inspection by drivers.
    pub events: Vec<LedgerEvent>,
}

impl<S: BlockStore> AnchorNode<S> {
    /// Creates an anchor. `leader` is the sealing anchor's node id;
    /// `block_interval_ms` is the leader's sealing cadence.
    pub fn new(
        ledger: SelectiveLedger<S>,
        leader: NodeId,
        block_interval_ms: u64,
    ) -> AnchorNode<S> {
        AnchorNode {
            ledger,
            leader,
            me: None,
            block_interval_ms,
            metrics: AnchorMetrics::new(),
            last_summary: None,
            announce_queue: VecDeque::new(),
            announce_bound: DEFAULT_ANNOUNCE_BOUND,
            events: Vec::new(),
        }
    }

    /// Sets the announce-queue bound (see [`DEFAULT_ANNOUNCE_BOUND`]).
    /// `0` disables pipelined announcing entirely: every seal runs a
    /// synchronous durability barrier before broadcasting.
    #[must_use]
    pub fn with_announce_bound(mut self, bound: usize) -> AnchorNode<S> {
        self.announce_bound = bound;
        self
    }

    /// The wrapped ledger (read-only).
    pub fn ledger(&self) -> &SelectiveLedger<S> {
        &self.ledger
    }

    /// Distributed-behaviour counters, including the pipeline-health
    /// gauges (announce-queue depth/peak, fsync stalls, seal/commit
    /// overlaps).
    pub fn stats(&self) -> AnchorStats {
        AnchorStats {
            blocks_sealed: self.metrics.blocks_sealed.get(),
            blocks_applied: self.metrics.blocks_applied.get(),
            blocks_rejected: self.metrics.blocks_rejected.get(),
            sync_checks_sent: self.metrics.sync_checks_sent.get(),
            sync_mismatches: self.metrics.sync_mismatches.get(),
            chains_adopted: self.metrics.chains_adopted.get(),
            entries_accepted: self.metrics.entries_accepted.get(),
            entries_rejected: self.metrics.entries_rejected.get(),
            announce_queue_depth: self.announce_queue.len() as u64,
            announce_queue_peak: self.metrics.announce_queue_peak.get(),
            fsync_stalls: self.metrics.fsync_stalls.get(),
            sealed_while_commit_pending: self.metrics.sealed_while_commit_pending.get(),
        }
    }

    /// A frozen snapshot of this node's private telemetry registry — the
    /// same counters [`AnchorNode::stats`] reads, in the snapshot format
    /// the rest of the stack renders (`anchor.*` names). The queue-depth
    /// gauge holds the depth as of the last seal, not the live queue
    /// length; `stats()` samples the latter.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.metrics.registry.snapshot()
    }

    /// This node's current status quo.
    pub fn status_quo(&self) -> StatusQuo {
        StatusQuo {
            marker: self.ledger.chain().marker(),
            tip: self.ledger.chain().tip().number(),
            tip_hash: self.ledger.chain().tip_hash(),
        }
    }

    fn am_leader(&self, ctx: &Context<'_, NodeMessage>) -> bool {
        ctx.me() == self.leader
    }

    /// The seal stage: drains the mempool into the next block, queues
    /// every newly sealed block (Σ included) for announcement, and
    /// releases whatever the durable watermark already covers. Sealing
    /// does **not** wait for the block's fsync — on a pipelined backend
    /// the commit stage catches up in the background — unless the
    /// announce queue outgrows its bound, in which case the leader runs
    /// a synchronous barrier (backpressure).
    fn leader_seal(&mut self, ctx: &mut Context<'_, NodeMessage>) {
        let now = seldel_chain::Timestamp(ctx.now());
        let tip_before = self.ledger.chain().tip().number();
        if !self.announce_queue.is_empty() {
            // An earlier block's fsync is still in flight: this seal
            // overlaps it — the pipeline is doing its job.
            self.metrics.sealed_while_commit_pending.incr();
        }
        match self.ledger.seal_block(now) {
            Ok(_) => {
                self.metrics.blocks_sealed.incr();
                self.events.extend(self.ledger.drain_events());
                let tip_now = self.ledger.chain().tip().number();
                let mut n = tip_before.next();
                while n <= tip_now {
                    self.announce_queue.push_back(n);
                    n = n.next();
                }
                let depth = self.announce_queue.len() as u64;
                self.metrics.announce_queue_depth.set(depth);
                self.metrics.announce_queue_peak.raise(depth);
                self.release_announcements(ctx);
                if self.announce_queue.len() > self.announce_bound {
                    // Backpressure: the commit stage lags too far behind
                    // the sealer. Stall once on a synchronous durability
                    // barrier, then everything queued is releasable.
                    self.metrics.fsync_stalls.incr();
                    self.ledger.commit_durable();
                    self.release_announcements(ctx);
                }
            }
            Err(err) => {
                // Sealing only fails on timestamp regression, which cannot
                // happen under monotone virtual time; log defensively.
                self.events.push(LedgerEvent::DeletionIneffective {
                    target: EntryId::default(),
                    reason: format!("leader seal failed: {err}"),
                });
            }
        }
    }

    /// The announce stage: broadcasts every queued block the durable
    /// watermark has reached — data blocks as `NewBlock`, Σ blocks as
    /// their hash-only `SyncCheck` (§IV-B: summaries are derived
    /// locally, never propagated) — and stops at the first block the
    /// store could still lose.
    fn release_announcements(&mut self, ctx: &mut Context<'_, NodeMessage>) {
        let durable = self.ledger.durable_tip();
        while self
            .announce_queue
            .front()
            .is_some_and(|&n| Some(n) <= durable)
        {
            let n = self.announce_queue.pop_front().expect("front checked");
            let Some(sealed) = self.ledger.chain().sealed(n) else {
                // Pruned before its release (a Σ merge retired it while
                // the queue was backed up): peers that miss it heal via
                // the ordinary reject → sync-request → adopt path.
                continue;
            };
            if sealed.block().kind() == BlockKind::Summary {
                let check = (sealed.block().number(), sealed.hash());
                self.last_summary = Some(check);
                self.metrics.sync_checks_sent.incr();
                ctx.broadcast(NodeMessage::SyncCheck {
                    number: check.0,
                    summary_hash: check.1,
                    payload_root: sealed.block().header().payload_hash,
                });
            } else {
                let block = sealed.into_sealed().into_block();
                ctx.broadcast(NodeMessage::NewBlock(block));
            }
        }
    }

    /// Replica path: after the tip moved by *adopting* a block, collect
    /// events and, if a summary block was derived locally, broadcast its
    /// hash for the §IV-B synchronisation check. (The leader's own seal
    /// path instead stages announcements behind the durable watermark in
    /// [`Self::release_announcements`].)
    fn after_chain_advance(&mut self, tip_before: BlockNumber, ctx: &mut Context<'_, NodeMessage>) {
        self.events.extend(self.ledger.drain_events());
        let tip_now = self.ledger.chain().tip().number();
        let mut n = tip_before.next();
        while n <= tip_now {
            if let Some(sealed) = self.ledger.chain().sealed(n) {
                if sealed.block().kind() == BlockKind::Summary {
                    // The Σ-hash sync check reads the cached sealed digest
                    // and the header's payload commitment — no re-hash.
                    let check = (sealed.block().number(), sealed.hash());
                    self.last_summary = Some(check);
                    ctx.broadcast(NodeMessage::SyncCheck {
                        number: check.0,
                        summary_hash: check.1,
                        payload_root: sealed.block().header().payload_hash,
                    });
                    self.metrics.sync_checks_sent.incr();
                }
            }
            n = n.next();
        }
    }

    /// Leader-side bulk erasure: applies a compiled deletion policy to
    /// the wrapped ledger. Every matched id passes the exact authorisation
    /// ladder a manual request would ([`SelectiveLedger::apply_policy`]);
    /// the enqueued deletion requests seal, replicate and execute through
    /// the ordinary block flow — replicas re-derive the marks from the
    /// sealed request entries, nothing policy-specific travels the wire.
    /// Drivers invoke this on the leader; dry-run audits go over the wire
    /// as [`NodeMessage::PolicyPlanRequest`] instead.
    ///
    /// # Errors
    ///
    /// Propagated from [`SelectiveLedger::apply_policy`].
    pub fn apply_policy(
        &mut self,
        requester: &seldel_crypto::SigningKey,
        policy: &seldel_core::CompiledPolicy,
    ) -> Result<seldel_core::DeletionPlan, seldel_core::CoreError> {
        let plan = self.ledger.apply_policy(requester, policy)?;
        self.metrics.policy_applies.incr();
        self.metrics.policy_requests_enqueued.add(plan.len() as u64);
        Ok(plan)
    }

    fn handle_submit(&mut self, entry: Entry, ctx: &mut Context<'_, NodeMessage>) {
        if self.am_leader(ctx) {
            match self.ledger.submit_entry(entry) {
                Ok(()) => self.metrics.entries_accepted.incr(),
                Err(_) => self.metrics.entries_rejected.incr(),
            }
        } else {
            // Forward to the leader; replicas never build blocks.
            ctx.send(self.leader, NodeMessage::Submit(entry));
        }
    }

    fn handle_new_block(
        &mut self,
        block: seldel_chain::Block,
        from: NodeId,
        ctx: &mut Context<'_, NodeMessage>,
    ) {
        if self.am_leader(ctx) {
            return; // leaders ignore echoes
        }
        let tip_before = self.ledger.chain().tip().number();
        match self.ledger.apply_block(block) {
            Ok(()) => {
                self.metrics.blocks_applied.incr();
                self.after_chain_advance(tip_before, ctx);
            }
            Err(_) => {
                self.metrics.blocks_rejected.incr();
                // Out of sync: ask the sender for everything we might lack.
                ctx.send(
                    from,
                    NodeMessage::SyncRequest {
                        from: self.ledger.chain().marker(),
                    },
                );
            }
        }
    }

    fn handle_sync_check(
        &mut self,
        number: BlockNumber,
        summary_hash: Digest32,
        payload_root: Digest32,
        from: NodeId,
        ctx: &mut Context<'_, NodeMessage>,
    ) {
        // Checks for blocks we have not reached yet (in-flight NewBlock
        // racing the SyncCheck) or already pruned are not divergence —
        // catch-up is handled by the NewBlock rejection path. The local
        // digest comes from the sealed-hash cache, never a re-hash; the
        // payload commitment comparison pinpoints record/tombstone-set
        // divergence as opposed to header-level disagreement.
        let our_root = self
            .ledger
            .chain()
            .get(number)
            .map(|b| b.header().payload_hash);
        match self.ledger.chain().hash_of(number) {
            Some(hash) if hash == summary_hash && our_root == Some(payload_root) => {} // in sync
            Some(_) => {
                // Same height, different hash: a real fork (§IV-B warns a
                // summary-derivation failure "would result in a fork").
                self.metrics.sync_mismatches.incr();
                ctx.send(
                    from,
                    NodeMessage::SyncRequest {
                        from: self.ledger.chain().marker(),
                    },
                );
            }
            None => {}
        }
    }

    fn handle_sync_request(
        &mut self,
        _from_block: BlockNumber,
        requester: NodeId,
        ctx: &mut Context<'_, NodeMessage>,
    ) {
        // Answer with the full live chain: adoption validates from the
        // marker, and a requester asking from a pruned-away number needs
        // the whole status quo anyway.
        let blocks = self.ledger.chain().export_blocks();
        ctx.send(requester, NodeMessage::SyncResponse { blocks });
    }

    fn handle_sync_response(&mut self, blocks: Vec<seldel_chain::Block>) {
        // Adopt only if the offered chain is ahead of ours.
        let Some(last) = blocks.last() else { return };
        let our_tip = self.ledger.chain().tip().number();
        if last.number() <= our_tip {
            return;
        }
        if self.ledger.adopt_chain(blocks).is_ok() {
            self.metrics.chains_adopted.incr();
            self.events.extend(self.ledger.drain_events());
        }
    }
}

impl<S: BlockStore> SimNode<NodeMessage> for AnchorNode<S> {
    fn on_message(&mut self, from: NodeId, msg: NodeMessage, ctx: &mut Context<'_, NodeMessage>) {
        self.me = Some(ctx.me());
        match msg {
            NodeMessage::Submit(entry) => self.handle_submit(entry, ctx),
            NodeMessage::NewBlock(block) => self.handle_new_block(block, from, ctx),
            NodeMessage::SyncCheck {
                number,
                summary_hash,
                payload_root,
            } => self.handle_sync_check(number, summary_hash, payload_root, from, ctx),
            NodeMessage::SyncRequest { from: from_block } => {
                self.handle_sync_request(from_block, from, ctx)
            }
            NodeMessage::SyncResponse { blocks } => self.handle_sync_response(blocks),
            NodeMessage::StatusQuoRequest => {
                ctx.send(from, NodeMessage::StatusQuoReply(self.status_quo()));
            }
            NodeMessage::Query { id } => {
                let record = self.ledger.record(id);
                let live = self.ledger.is_live(id);
                ctx.send(from, NodeMessage::QueryReply { id, record, live });
            }
            NodeMessage::PolicyPlanRequest { requester, policy } => {
                // A pure read — any anchor serves it from its own view.
                self.metrics.policy_plans_served.incr();
                let plan = self.ledger.plan_policy(&requester, &policy);
                ctx.send(from, NodeMessage::PolicyPlanReply { plan });
            }
            // Client-side and quorum messages are not for anchors here; the
            // vote plumbing is exercised directly in seldel-consensus.
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, NodeMessage>) {
        self.me = Some(ctx.me());
        if self.am_leader(ctx) {
            // First release anything the background commit stage made
            // durable since the last tick, then overlap the next seal
            // with whatever fsync work is still in flight.
            self.release_announcements(ctx);
            self.leader_seal(ctx);
        }
        ctx.schedule_tick(self.block_interval_ms);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_codec::DataRecord;
    use seldel_core::ChainConfig;
    use seldel_crypto::SigningKey;
    use seldel_network::{NetConfig, SimNetwork};

    fn make_cluster(n: usize) -> (SimNetwork<NodeMessage>, Vec<NodeId>) {
        let mut net = SimNetwork::new(NetConfig::default());
        let leader = NodeId(0);
        let ids: Vec<NodeId> = (0..n)
            .map(|_| {
                let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
                net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)))
            })
            .collect();
        for id in &ids {
            net.schedule_tick(*id, 100);
        }
        (net, ids)
    }

    fn entry(seed: u8, n: u64) -> Entry {
        Entry::sign_data(
            &SigningKey::from_seed([seed; 32]),
            DataRecord::new("login").with("user", "A").with("n", n),
        )
    }

    /// Asserts every replica's chain is a consistent prefix of the
    /// leader's (replicas may lag by in-flight blocks, but never diverge).
    fn assert_prefix_consistent(
        net: &SimNetwork<NodeMessage>,
        leader: NodeId,
        replicas: &[NodeId],
    ) {
        let leader_node = net.node_as::<AnchorNode>(leader).unwrap();
        for id in replicas {
            let replica = net.node_as::<AnchorNode>(*id).unwrap();
            let tip = replica.ledger().chain().tip();
            let leader_same = leader_node
                .ledger()
                .chain()
                .get(tip.number())
                .unwrap_or_else(|| panic!("leader pruned past replica tip {}", tip.number()));
            assert_eq!(
                tip.hash(),
                leader_same.hash(),
                "replica {id} diverged at block {}",
                tip.number()
            );
        }
    }

    #[test]
    fn replicas_follow_leader_and_derive_identical_summaries() {
        let (mut net, ids) = make_cluster(3);
        for i in 0..10u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 500);
        assert_prefix_consistent(&net, ids[0], &ids[1..]);
        let a0 = net.node_as::<AnchorNode>(ids[0]).unwrap();
        assert!(a0.stats().blocks_sealed > 5);
        assert!(a0.ledger().stats().summaries_created >= 2);
        // Replicas derived summaries locally, close to the leader's count.
        for id in &ids[1..] {
            let node = net.node_as::<AnchorNode>(*id).unwrap();
            assert!(node.ledger().stats().summaries_created >= 2);
            assert_eq!(node.stats().sync_mismatches, 0);
        }
    }

    #[test]
    fn mixed_store_backends_stay_in_sync() {
        // A SegStore replica follows a MemStore leader: summary blocks are
        // derived locally on both backends and the Σ-hash sync checks must
        // never flag a mismatch (hashes are storage-independent).
        use seldel_chain::SegStore;
        let mut net = SimNetwork::new(NetConfig::default());
        let leader = NodeId(0);
        let mem_leader = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::new(ChainConfig::paper_evaluation()),
            leader,
            100,
        )));
        let seg_replica = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::builder(ChainConfig::paper_evaluation())
                .store_backend::<SegStore>()
                .build(),
            leader,
            100,
        )));
        net.schedule_tick(mem_leader, 100);
        net.schedule_tick(seg_replica, 100);
        for i in 0..12u64 {
            net.send_external(mem_leader, NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 500);
        let l = net.node_as::<AnchorNode>(mem_leader).unwrap();
        let r = net.node_as::<AnchorNode<SegStore>>(seg_replica).unwrap();
        assert!(l.ledger().stats().summaries_created >= 2);
        assert_eq!(r.stats().sync_mismatches, 0);
        let replica_tip = r.ledger().chain().tip().number();
        assert_eq!(
            l.ledger().chain().hash_of(replica_tip),
            r.ledger().chain().hash_of(replica_tip),
            "backends diverged at block {replica_tip}"
        );
    }

    #[test]
    fn file_store_anchor_restarts_and_resumes_sealing() {
        // An anchor with a durable ledger is stopped (cluster dropped),
        // reopened from its directory, and put back in front of a fresh
        // replica: it must resume sealing from the recovered tip, and the
        // Σ-hash sync checks must pass against the catching-up peer.
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::FileStore;
        let scratch = ScratchDir::new("anchor-restart");
        let dir = scratch.path().to_path_buf();
        let leader = NodeId(0);

        // Session 1: durable leader + in-memory replica.
        let tip_before = {
            let mut net = SimNetwork::new(NetConfig::default());
            let l = net.add_node(Box::new(AnchorNode::new(
                SelectiveLedger::builder(ChainConfig::paper_evaluation())
                    .store_backend::<FileStore>()
                    .on_disk_with_capacity(&dir, 4)
                    .unwrap(),
                leader,
                100,
            )));
            let r = net.add_node(Box::new(AnchorNode::new(
                SelectiveLedger::new(ChainConfig::paper_evaluation()),
                leader,
                100,
            )));
            net.schedule_tick(l, 100);
            net.schedule_tick(r, 100);
            for i in 0..10u64 {
                net.send_external(l, NodeMessage::Submit(entry(1, i)));
                net.run_until(net.now() + 100);
            }
            net.run_until(net.now() + 300);
            let node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
            assert!(node.stats().blocks_sealed >= 10);
            node.ledger().chain().tip().number()
            // net (and every node) dropped here: the anchor "stops".
        };

        // Session 2: reopen from disk; the close was clean, so recovery is
        // lossless and the anchor resumes exactly at its old tip.
        let reopened = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .store_backend::<FileStore>()
            .on_disk(&dir)
            .unwrap();
        assert_eq!(reopened.chain().tip().number(), tip_before);

        let mut net = SimNetwork::new(NetConfig::default());
        let l = net.add_node(Box::new(AnchorNode::new(reopened, leader, 100)));
        let r = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::new(ChainConfig::paper_evaluation()),
            leader,
            100,
        )));
        net.schedule_tick(l, 100);
        net.schedule_tick(r, 100);
        // Virtual time restarts at zero; the leader refuses to seal until
        // `now` catches up with the recovered tip timestamp, then resumes.
        for i in 100..115u64 {
            net.send_external(l, NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 2_000);

        let leader_node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
        let replica = net.node_as::<AnchorNode>(r).unwrap();
        let new_tip = leader_node.ledger().chain().tip().number();
        assert!(
            new_tip > tip_before,
            "restarted leader never resumed sealing (tip {new_tip})"
        );
        // The fresh replica caught up by adopting the recovered chain and
        // observed no Σ-hash divergence.
        assert!(replica.stats().chains_adopted >= 1, "no adoption");
        assert_eq!(replica.stats().sync_mismatches, 0);
        let replica_tip = replica.ledger().chain().tip();
        assert_eq!(
            leader_node
                .ledger()
                .chain()
                .hash_of(replica_tip.number())
                .expect("replica tip is live on the leader"),
            replica_tip.hash(),
            "replica diverged from the restarted leader"
        );
    }

    /// Starvation regression guard for the sharded mempool: with a block
    /// capacity configured, a single author flooding the leader cannot
    /// occupy every slot of a sealed block — late entries from other
    /// authors still make the very next block via the fair round-robin
    /// drain.
    #[test]
    fn flooding_author_cannot_starve_others_out_of_a_sealed_block() {
        use seldel_chain::testutil::distinct_shard_author_seeds;
        use seldel_chain::ShardMap;

        let mut net = SimNetwork::new(NetConfig::default());
        let leader = NodeId(0);
        let config = ChainConfig {
            max_block_entries: Some(4),
            ..ChainConfig::paper_evaluation()
        };
        let shards = 4;
        let l = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::builder(config).shards(shards).build(),
            leader,
            100,
        )));
        net.schedule_tick(l, 100);

        // Pick authors guaranteed to route to different mempool shards.
        let seeds = distinct_shard_author_seeds(ShardMap::new(shards), 2);
        let (hot, quiet) = (seeds[0], seeds[1]);

        // The hot author floods 16 entries, then the quiet author sends
        // one — all before the first seal tick fires.
        for i in 0..16u64 {
            net.send_external(l, NodeMessage::Submit(entry(hot, i)));
        }
        net.send_external(l, NodeMessage::Submit(entry(quiet, 1_000)));
        net.run_until(150); // first tick at 100 seals block 1

        let node = net.node_as::<AnchorNode>(l).unwrap();
        let sealed = node.ledger().chain().get(BlockNumber(1)).expect("sealed");
        assert_eq!(sealed.entries().len(), 4, "capacity must cap the block");
        let quiet_key = seldel_crypto::SigningKey::from_seed([quiet; 32]).verifying_key();
        assert!(
            sealed.entries().iter().any(|e| e.author() == quiet_key),
            "quiet author starved out of the first sealed block"
        );

        // Nothing is lost: the flood drains over the following blocks.
        net.run_until(net.now() + 1_000);
        let node = net.node_as::<AnchorNode>(l).unwrap();
        assert_eq!(node.stats().entries_accepted, 17);
        assert_eq!(node.ledger().chain().record_count(), 17);
        assert_eq!(node.ledger().stats().pending_entries, 0);
    }

    /// The sharded intake refuses byte-identical resubmissions while the
    /// original is still pending — counted as rejections, not accepted
    /// twice.
    #[test]
    fn duplicate_pending_submissions_are_rejected_at_intake() {
        let (mut net, ids) = make_cluster(1);
        let flood = entry(1, 7);
        net.send_external(ids[0], NodeMessage::Submit(flood.clone()));
        net.send_external(ids[0], NodeMessage::Submit(flood.clone()));
        net.send_external(ids[0], NodeMessage::Submit(flood.clone()));
        net.run_until(net.now() + 200);
        let node = net.node_as::<AnchorNode>(ids[0]).unwrap();
        assert_eq!(node.stats().entries_accepted, 1);
        assert_eq!(node.stats().entries_rejected, 2);
        // Once sealed, the same bytes may be submitted again.
        net.send_external(ids[0], NodeMessage::Submit(flood));
        net.run_until(net.now() + 200);
        let node = net.node_as::<AnchorNode>(ids[0]).unwrap();
        assert_eq!(node.stats().entries_accepted, 2);
    }

    /// The registry-backed telemetry view and the legacy `stats()` view
    /// must agree counter for counter — `AnchorStats` is now a snapshot
    /// of the node's private registry.
    #[test]
    fn telemetry_snapshot_mirrors_stats() {
        let (mut net, ids) = make_cluster(1);
        for i in 0..5u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
        }
        net.run_until(net.now() + 500);
        let node = net.node_as::<AnchorNode>(ids[0]).unwrap();
        let stats = node.stats();
        let snap = node.telemetry();
        assert_eq!(
            snap.counter("anchor.blocks_sealed"),
            Some(stats.blocks_sealed)
        );
        assert_eq!(
            snap.counter("anchor.entries_accepted"),
            Some(stats.entries_accepted)
        );
        assert_eq!(
            snap.counter("anchor.entries_rejected"),
            Some(stats.entries_rejected)
        );
        assert_eq!(
            snap.counter("anchor.sync_checks_sent"),
            Some(stats.sync_checks_sent)
        );
        assert_eq!(
            snap.gauge("anchor.announce_queue.peak"),
            Some(stats.announce_queue_peak)
        );
        assert!(stats.blocks_sealed > 0, "leader sealed nothing");
    }

    #[test]
    fn submissions_to_replicas_are_forwarded() {
        let (mut net, ids) = make_cluster(3);
        net.send_external(ids[2], NodeMessage::Submit(entry(1, 7)));
        net.run_until(net.now() + 1000);
        let leader = net.node_as::<AnchorNode>(ids[0]).unwrap();
        assert_eq!(leader.stats().entries_accepted, 1);
        // The entry made it into a sealed block on every node.
        for id in &ids {
            let node = net.node_as::<AnchorNode>(*id).unwrap();
            assert!(node.ledger().chain().record_count() >= 1);
        }
    }

    #[test]
    fn partitioned_replica_catches_up_via_sync() {
        let (mut net, ids) = make_cluster(3);
        // Cut replica 2 off.
        net.partition(vec![vec![ids[0], ids[1]], vec![ids[2]]]);
        for i in 0..6u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        // Replica 2 is behind.
        let behind = net
            .node_as::<AnchorNode>(ids[2])
            .unwrap()
            .ledger()
            .chain()
            .tip()
            .number();
        let ahead = net
            .node_as::<AnchorNode>(ids[0])
            .unwrap()
            .ledger()
            .chain()
            .tip()
            .number();
        assert!(behind < ahead);
        // Heal; subsequent blocks trigger rejection → sync → adoption.
        net.heal_partitions();
        for i in 6..12u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 1000);
        let n2 = net.node_as::<AnchorNode>(ids[2]).unwrap();
        assert!(n2.stats().chains_adopted >= 1, "no adoption happened");
        // After adoption the straggler's chain is a consistent prefix of
        // (or equal to) the leader's, and it caught up past its stale tip.
        assert!(n2.ledger().chain().tip().number() > behind);
        assert_prefix_consistent(&net, ids[0], &ids[2..]);
    }

    #[test]
    fn cluster_converges_over_lossy_network() {
        // 10% random loss: NewBlock messages get dropped, replicas fall
        // behind, and the reject→sync→adopt path must heal them.
        let mut net = SimNetwork::new(seldel_network::NetConfig {
            drop_probability: 0.10,
            seed: 0xBADD,
            ..Default::default()
        });
        let leader = NodeId(0);
        let ids: Vec<NodeId> = (0..3)
            .map(|_| {
                let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
                net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)))
            })
            .collect();
        for id in &ids {
            net.schedule_tick(*id, 100);
        }
        for i in 0..30u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 2_000);
        assert!(net.stats().dropped_random > 0, "no loss injected");
        // All replicas hold a consistent prefix of the leader's chain and
        // made progress past the first merge cycle.
        assert_prefix_consistent(&net, ids[0], &ids[1..]);
        for id in &ids[1..] {
            let node = net.node_as::<AnchorNode>(*id).unwrap();
            assert!(
                node.ledger().chain().tip().number().value() > 10,
                "replica {id} stalled at {}",
                node.ledger().chain().tip().number()
            );
        }
    }

    #[test]
    fn status_quo_and_query_replies() {
        #[derive(Default)]
        struct Probe {
            status: Option<StatusQuo>,
            query: Option<(EntryId, bool)>,
        }
        impl SimNode<NodeMessage> for Probe {
            fn on_message(
                &mut self,
                _from: NodeId,
                msg: NodeMessage,
                _ctx: &mut Context<'_, NodeMessage>,
            ) {
                match msg {
                    NodeMessage::StatusQuoReply(sq) => self.status = Some(sq),
                    NodeMessage::QueryReply { id, live, .. } => self.query = Some((id, live)),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = SimNetwork::new(NetConfig::default());
        let leader = NodeId(0);
        let ledger = SelectiveLedger::new(ChainConfig::paper_evaluation());
        let anchor = net.add_node(Box::new(AnchorNode::new(ledger, leader, 100)));
        let probe = net.add_node(Box::new(Probe::default()));
        net.schedule_tick(anchor, 100);

        net.send_external(anchor, NodeMessage::Submit(entry(1, 1)));
        net.run_until(300);

        // Ask for status and query the first record from the probe node.
        net.with_node_mut(probe, |_n| {});
        net.send_external(probe, NodeMessage::ClientSubmit(entry(2, 2)));
        // Probe is not a client; directly message the anchor instead.
        net.send_external(anchor, NodeMessage::StatusQuoRequest);
        net.run_until(net.now() + 100);
        // StatusQuoRequest from EXTERNAL cannot be answered (no address) —
        // route through the probe instead:
        let id = EntryId::new(BlockNumber(1), seldel_chain::EntryNumber(0));
        // Use probe → anchor messages via a tick-less manual send.
        // Simplest: anchor replies to probe when probe sends.
        // Inject by making the probe send in response to a driver message —
        // covered in the client tests; here just exercise Query directly.
        net.send_external(anchor, NodeMessage::Query { id });
        net.run_until(net.now() + 100);
        // Replies went to EXTERNAL (dropped); the point of this test is
        // that the anchor does not crash on driver-injected control
        // messages and keeps serving.
        assert!(
            net.node_as::<AnchorNode>(anchor)
                .unwrap()
                .ledger()
                .chain()
                .len()
                >= 2
        );
    }

    #[test]
    fn policy_plan_is_served_over_the_wire_and_apply_replicates() {
        use seldel_core::Selector;

        /// Forwards a prepared request to its anchor when the driver pokes
        /// it (replies to `EXTERNAL` are dropped, so the probe must be the
        /// on-net sender), then records the reply.
        struct PolicyProbe {
            anchor: NodeId,
            request: Option<NodeMessage>,
            plan: Option<seldel_core::DeletionPlan>,
        }
        impl SimNode<NodeMessage> for PolicyProbe {
            fn on_message(
                &mut self,
                _from: NodeId,
                msg: NodeMessage,
                ctx: &mut Context<'_, NodeMessage>,
            ) {
                match msg {
                    NodeMessage::ClientCheckStatus => {
                        if let Some(request) = self.request.take() {
                            ctx.send(self.anchor, request);
                        }
                    }
                    NodeMessage::PolicyPlanReply { plan } => self.plan = Some(plan),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut net, ids) = make_cluster(2);
        let alice = SigningKey::from_seed([1u8; 32]);
        let policy = Selector::AuthorIs(alice.verifying_key())
            .compile("wire-purge")
            .unwrap();
        let probe = net.add_node(Box::new(PolicyProbe {
            anchor: ids[0],
            request: Some(NodeMessage::PolicyPlanRequest {
                requester: alice.verifying_key(),
                policy: policy.clone(),
            }),
            plan: None,
        }));
        for i in 0..6u64 {
            net.send_external(ids[0], NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
        }
        net.run_until(net.now() + 300);

        // Dry run over the wire: poke the probe, which asks the leader.
        net.send_external(probe, NodeMessage::ClientCheckStatus);
        net.run_until(net.now() + 100);
        let wire_plan = net
            .node_as::<PolicyProbe>(probe)
            .unwrap()
            .plan
            .clone()
            .expect("no PolicyPlanReply received");
        assert!(!wire_plan.is_empty());
        let direct = net
            .node_as::<AnchorNode>(ids[0])
            .unwrap()
            .ledger()
            .plan_policy(&alice.verifying_key(), &policy);
        assert_eq!(wire_plan, direct, "wire dry-run must equal a local one");

        // Apply on the leader; the bulk requests seal and replicate
        // through the ordinary block flow.
        let applied = net.with_node_as_mut(ids[0], |node: &mut AnchorNode| {
            node.apply_policy(&alice, &policy).unwrap()
        });
        assert_eq!(applied.matched, wire_plan.matched);
        net.run_until(net.now() + 3_000);

        for id in &ids {
            let node = net.node_as::<AnchorNode>(*id).unwrap();
            for target in &applied.matched {
                assert!(
                    !node.ledger().is_live(*target),
                    "{target} still live on node {id}"
                );
            }
        }
        // The counters live in the private registry; AnchorStats' pinned
        // shape is untouched.
        let leader = net.node_as::<AnchorNode>(ids[0]).unwrap();
        let snap = leader.telemetry();
        assert_eq!(snap.counter("anchor.policy.plans_served"), Some(1));
        assert_eq!(snap.counter("anchor.policy.applies"), Some(1));
        assert_eq!(
            snap.counter("anchor.policy.requests_enqueued"),
            Some(applied.len() as u64)
        );
    }

    #[test]
    fn announcements_never_outrun_the_durable_watermark() {
        // Deterministic gating + backpressure check, no background worker:
        // an OnFill FileStore with an oversized segment never fsyncs on its
        // own, so the durable watermark only advances when the announce
        // queue exceeds its bound and the leader stalls on a barrier. At
        // every step, everything still queued must sit strictly above the
        // watermark — the "never announce a block the store could lose"
        // invariant. The policy is pinned explicitly: the premise breaks
        // under a SELDEL_FSYNC_POLICY=always override (CI pipeline-smoke).
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::{FileStore, FsyncPolicy};
        let scratch = ScratchDir::new("anchor-watermark-gate");
        let leader = NodeId(0);

        let store = FileStore::open_with_capacity(scratch.path(), 64)
            .unwrap()
            .with_fsync_policy(FsyncPolicy::OnFill);
        let mut net = SimNetwork::new(NetConfig::default());
        let l = net.add_node(Box::new(
            AnchorNode::new(
                SelectiveLedger::builder(ChainConfig::paper_evaluation())
                    .store_backend::<FileStore>()
                    .open_store(store)
                    .unwrap(),
                leader,
                100,
            )
            .with_announce_bound(4),
        ));
        let r = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::new(ChainConfig::paper_evaluation()),
            leader,
            100,
        )));
        net.schedule_tick(l, 100);
        net.schedule_tick(r, 100);

        let mut saw_seal_ahead_of_durability = false;
        for i in 0..14u64 {
            net.send_external(l, NodeMessage::Submit(entry(1, i)));
            net.run_until(net.now() + 100);
            let node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
            let durable = node.ledger().durable_tip();
            for &queued in &node.announce_queue {
                assert!(
                    Some(queued) > durable,
                    "block {queued} queued at or below the durable watermark {durable:?}"
                );
            }
            if !node.announce_queue.is_empty()
                && Some(node.ledger().chain().tip().number()) > durable
            {
                saw_seal_ahead_of_durability = true;
            }
        }
        net.run_until(net.now() + 500);

        let node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
        let stats = node.stats();
        assert!(
            saw_seal_ahead_of_durability,
            "sealing never ran ahead of durability — the pipeline had no effect"
        );
        assert!(
            stats.fsync_stalls >= 1,
            "the bound-4 queue never forced a backpressure barrier"
        );
        assert!(
            stats.announce_queue_peak > 4,
            "queue never filled its bound"
        );
        assert!(stats.blocks_sealed >= 10);
        // Despite the staging, the replica converged on the released prefix.
        let replica = net.node_as::<AnchorNode>(r).unwrap();
        let tip = replica.ledger().chain().tip();
        assert!(tip.number() > BlockNumber(0));
        let same = node
            .ledger()
            .chain()
            .get(tip.number())
            .expect("leader pruned past replica tip");
        assert_eq!(tip.hash(), same.hash(), "replica diverged from the leader");
    }

    #[test]
    fn paused_commit_stage_freezes_replicas_until_durability_resumes() {
        // A *pipelined* durable leader with the real background commit
        // worker: while the worker is paused the watermark freezes, the
        // leader keeps sealing (overlap), and the replica must observe
        // nothing new — no `NewBlock` travels past `durable_up_to`. Once
        // the worker resumes, the backlog drains and the replica catches
        // up. Wall-clock waits are deadline-bounded.
        use seldel_chain::testutil::ScratchDir;
        use seldel_chain::FileStore;
        use std::time::{Duration, Instant};
        let scratch = ScratchDir::new("anchor-paused-commit");
        let leader = NodeId(0);

        // No retirement cap: a prune would run the §IV-C durability
        // barrier and (correctly) unfreeze the watermark mid-test.
        let mut config = ChainConfig::paper_evaluation();
        config.retention.max_live_blocks = None;

        let mut net = SimNetwork::new(NetConfig::default());
        let l = net.add_node(Box::new(
            AnchorNode::new(
                SelectiveLedger::builder(config.clone())
                    .store_backend::<FileStore>()
                    .pipelined_commits(true)
                    .on_disk_with_capacity(scratch.path(), 4)
                    .unwrap(),
                leader,
                100,
            )
            // A wide bound so the pause below never trips the synchronous
            // backpressure barrier (which would advance the watermark).
            .with_announce_bound(64),
        ));
        let r = net.add_node(Box::new(AnchorNode::new(
            SelectiveLedger::new(config),
            leader,
            100,
        )));
        net.schedule_tick(l, 100);
        net.schedule_tick(r, 100);

        // Warm up: a few blocks flow end to end through the live worker.
        let mut seq = 0u64;
        for _ in 0..4 {
            net.send_external(l, NodeMessage::Submit(entry(1, seq)));
            net.run_until(net.now() + 100);
            std::thread::sleep(Duration::from_millis(2));
            seq += 1;
        }

        // Freeze the commit stage and keep sealing: the replica's view
        // must not move while the watermark is frozen.
        net.node_as::<AnchorNode<FileStore>>(l)
            .unwrap()
            .ledger()
            .chain()
            .store()
            .pause_commits(true);
        // Flush everything already durable (or in flight) before taking the
        // frozen snapshot: two idle ticks release and deliver any block the
        // watermark covered at pause time.
        net.run_until(net.now() + 300);
        let frozen_replica_tip = net
            .node_as::<AnchorNode>(r)
            .unwrap()
            .ledger()
            .chain()
            .tip()
            .number();
        for _ in 0..5 {
            net.send_external(l, NodeMessage::Submit(entry(1, seq)));
            net.run_until(net.now() + 100);
            seq += 1;
        }
        {
            let node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
            assert!(
                node.stats().sealed_while_commit_pending >= 1,
                "no seal overlapped a pending commit while the stage was paused"
            );
            assert_eq!(node.stats().fsync_stalls, 0, "pause tripped the barrier");
            let replica_tip = net
                .node_as::<AnchorNode>(r)
                .unwrap()
                .ledger()
                .chain()
                .tip()
                .number();
            assert_eq!(
                replica_tip, frozen_replica_tip,
                "a block crossed the frozen durable watermark"
            );
        }

        // Resume: the worker drains the fsync backlog in the background and
        // subsequent ticks release the queued announcements.
        net.node_as::<AnchorNode<FileStore>>(l)
            .unwrap()
            .ledger()
            .chain()
            .store()
            .pause_commits(false);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            net.send_external(l, NodeMessage::Submit(entry(1, seq)));
            net.run_until(net.now() + 100);
            std::thread::sleep(Duration::from_millis(2));
            seq += 1;
            let replica_tip = net
                .node_as::<AnchorNode>(r)
                .unwrap()
                .ledger()
                .chain()
                .tip()
                .number();
            if replica_tip > frozen_replica_tip {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "replica never caught up after the commit stage resumed"
            );
        }
        net.run_until(net.now() + 500);
        let node = net.node_as::<AnchorNode<FileStore>>(l).unwrap();
        let replica = net.node_as::<AnchorNode>(r).unwrap();
        let tip = replica.ledger().chain().tip();
        let same = node
            .ledger()
            .chain()
            .get(tip.number())
            .expect("leader pruned past replica tip");
        assert_eq!(tip.hash(), same.hash(), "replica diverged from the leader");
        assert!(node.stats().announce_queue_peak >= 2);
    }
}

//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;

use seldel_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use seldel_crypto::{hex, sha256, sha512, MerkleTree, Sha256, Sha512, SigningKey};

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    #[test]
    fn sha512_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut hasher = Sha512::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha512(&data));
    }

    #[test]
    fn sha256_is_injective_in_practice(a in proptest::collection::vec(any::<u8>(), 0..256), b in proptest::collection::vec(any::<u8>(), 0..256)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn hmac_verifies_and_rejects(key in proptest::collection::vec(any::<u8>(), 0..128), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
        let mut other = msg.clone();
        other.push(0x17);
        prop_assert!(!verify_hmac_sha256(&key, &other, &tag));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ed25519_round_trip_and_cross_rejection(
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let a = SigningKey::from_seed(seed_a);
        let sig = a.sign(&msg);
        prop_assert!(a.verifying_key().verify(&msg, &sig).is_ok());
        if seed_a != seed_b {
            let b = SigningKey::from_seed(seed_b);
            prop_assert!(b.verifying_key().verify(&msg, &sig).is_err());
        }
    }

    #[test]
    fn ed25519_signature_bit_flips_rejected(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 1..64), pos in any::<u16>()) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        let mut bytes = sig.to_bytes();
        let idx = (pos as usize) % 64;
        bytes[idx] ^= 1 << (pos % 8);
        let tampered = seldel_crypto::Signature::from_bytes(&bytes);
        prop_assert!(key.verifying_key().verify(&msg, &tampered).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merkle_root_changes_when_any_leaf_changes(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..24), 1..24),
        which in any::<u16>(),
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let mut mutated = leaves.clone();
        let idx = (which as usize) % mutated.len();
        mutated[idx].push(0xFF);
        let other = MerkleTree::from_leaves(&mutated);
        prop_assert_ne!(tree.root(), other.root());
    }

    #[test]
    fn merkle_proof_lengths_logarithmic(leaf_count in 1usize..200) {
        let leaves: Vec<Vec<u8>> = (0..leaf_count).map(|i| vec![i as u8, (i >> 8) as u8]).collect();
        let tree = MerkleTree::from_leaves(&leaves);
        let bound = usize::BITS - (leaf_count - 1).leading_zeros();
        for i in [0, leaf_count / 2, leaf_count - 1] {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.path_len() <= bound as usize);
        }
    }
}

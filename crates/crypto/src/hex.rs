//! Minimal hexadecimal encoding and decoding.
//!
//! Used throughout the workspace for rendering digests, keys and signatures
//! in the console format of the paper's Figs. 6–8.

use std::fmt;

/// Error returned by [`decode`] for malformed hexadecimal input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHexError {
    kind: ParseHexErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseHexErrorKind {
    OddLength(usize),
    InvalidDigit(char, usize),
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseHexErrorKind::OddLength(len) => {
                write!(f, "hex string has odd length {len}")
            }
            ParseHexErrorKind::InvalidDigit(c, idx) => {
                write!(f, "invalid hex digit {c:?} at index {idx}")
            }
        }
    }
}

impl std::error::Error for ParseHexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Example
///
/// ```
/// assert_eq!(seldel_crypto::hex::encode([0xde, 0xad, 0xbe, 0xef]), "deadbeef");
/// ```
pub fn encode(bytes: impl AsRef<[u8]>) -> String {
    let bytes = bytes.as_ref();
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Encodes `bytes` as an uppercase hexadecimal string.
///
/// The paper renders hash prefixes in uppercase (e.g. the genesis
/// predecessor `DEADB`), so the console renderer uses this variant.
pub fn encode_upper(bytes: impl AsRef<[u8]>) -> String {
    encode(bytes).to_ascii_uppercase()
}

fn digit_value(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Decodes a hexadecimal string (either case) into bytes.
///
/// # Errors
///
/// Returns [`ParseHexError`] if the input has odd length or contains a
/// non-hexadecimal character.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), seldel_crypto::hex::ParseHexError> {
/// let bytes = seldel_crypto::hex::decode("DEADbeef")?;
/// assert_eq!(bytes, [0xde, 0xad, 0xbe, 0xef]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: impl AsRef<str>) -> Result<Vec<u8>, ParseHexError> {
    let s = s.as_ref();
    if s.len() % 2 != 0 {
        return Err(ParseHexError {
            kind: ParseHexErrorKind::OddLength(s.len()),
        });
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        let hi = digit_value(bytes[i]).ok_or(ParseHexError {
            kind: ParseHexErrorKind::InvalidDigit(bytes[i] as char, i),
        })?;
        let lo = digit_value(bytes[i + 1]).ok_or(ParseHexError {
            kind: ParseHexErrorKind::InvalidDigit(bytes[i + 1] as char, i + 1),
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

/// Decodes a hexadecimal string into a fixed-size array.
///
/// # Errors
///
/// Returns [`ParseHexError`] for malformed hex; panics are avoided by
/// returning `None`-like errors for wrong lengths via `InvalidDigit` being
/// inapplicable — the length mismatch is reported as an odd-length error when
/// `s.len() != 2 * N`.
pub fn decode_array<const N: usize>(s: impl AsRef<str>) -> Result<[u8; N], ParseHexError> {
    let s = s.as_ref();
    if s.len() != 2 * N {
        return Err(ParseHexError {
            kind: ParseHexErrorKind::OddLength(s.len()),
        });
    }
    let v = decode(s)?;
    let mut out = [0u8; N];
    out.copy_from_slice(&v);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode([]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn upper_and_mixed_case_decode() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode("DeAdBeEf").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn encode_upper_matches_paper_style() {
        assert_eq!(encode_upper([0xde, 0xad, 0xb0]), "DEADB0");
    }

    #[test]
    fn odd_length_rejected() {
        assert!(decode("abc").is_err());
        let err = decode("abc").unwrap_err();
        assert!(err.to_string().contains("odd length"));
    }

    #[test]
    fn invalid_digit_rejected() {
        let err = decode("zz").unwrap_err();
        assert!(err.to_string().contains("invalid hex digit"));
    }

    #[test]
    fn decode_array_length_check() {
        assert!(decode_array::<4>("deadbeef").is_ok());
        assert!(decode_array::<4>("deadbe").is_err());
        assert!(decode_array::<4>("deadbeefff").is_err());
    }
}

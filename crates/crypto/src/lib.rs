//! Cryptographic substrate for the selective-deletion blockchain.
//!
//! The paper ("Selective Deletion in a Blockchain", Hillmann et al., ICDCS
//! 2020) requires three cryptographic facilities:
//!
//! * **Block and entry hashing** — blocks are chained by hash, and summary
//!   blocks must hash bit-identically on every anchor node
//!   ([`sha256()`], [`Digest32`]).
//! * **Entry signatures** — every data entry carries the author key `K` and a
//!   signature `S`; deletion requests are authorised by signature match
//!   ([`ed25519`], [`SigningKey`], [`VerifyingKey`]).
//! * **Merkle anchors** — the 51 %-attack hampering of Fig. 9 stores the
//!   Merkle root of a middle sequence inside the merging summary block
//!   ([`merkle::MerkleTree`]).
//!
//! Because this repository is fully self-contained, all primitives are
//! implemented from scratch (FIPS 180-4 SHA-2, RFC 2104 HMAC, RFC 8032
//! Ed25519) and validated against the official test vectors in this crate's
//! test suite.
//!
//! # Security note
//!
//! The field, scalar and point arithmetic is written for clarity and
//! determinism, not constant-time execution. This matches the research
//! prototype character of the paper; do not use this crate to protect
//! production secrets.
//!
//! # Example
//!
//! ```
//! use seldel_crypto::{sha256, SigningKey};
//!
//! let digest = sha256(b"block payload");
//! assert_eq!(digest.as_bytes().len(), 32);
//!
//! let key = SigningKey::from_seed([7u8; 32]);
//! let sig = key.sign(b"delete block 3 entry 1");
//! assert!(key.verifying_key().verify(b"delete block 3 entry 1", &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
pub mod ed25519;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sha512;

pub use ed25519::{Signature, SignatureError, SigningKey, VerifyingKey};
pub use merkle::{MerkleProof, MerkleTree, Side};
pub use sha256::{digests_finalized, sha256, Digest32, Sha256};
pub use sha512::{sha512, Digest64, Sha512};

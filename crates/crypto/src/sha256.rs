//! SHA-256 (FIPS 180-4).
//!
//! Used for every block hash, entry hash and Merkle node in the workspace.
//! The streaming [`Sha256`] type follows the usual `update`/`finalize`
//! hasher shape; [`sha256`] is the one-shot convenience function.

use std::fmt;

use crate::hex;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 32-byte SHA-256 digest.
///
/// This is the hash type used for block hashes, previous-hash links, Merkle
/// roots and entry digests throughout the workspace.
///
/// # Example
///
/// ```
/// use seldel_crypto::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest32([u8; 32]);

impl Digest32 {
    /// The all-zero digest, used as a sentinel (e.g. the payload hash of an
    /// empty block body before hashing).
    pub const ZERO: Digest32 = Digest32([0u8; 32]);

    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest32(bytes)
    }

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest and returns the bytes.
    pub const fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Lowercase hexadecimal rendering of the full digest.
    pub fn to_hex(&self) -> String {
        hex::encode(self.0)
    }

    /// Uppercase five-character prefix, the console style of the paper's
    /// Figs. 6–8 (e.g. genesis predecessor `DEADB`).
    pub fn short(&self) -> String {
        let full = hex::encode_upper(&self.0[..3]);
        full[..5].to_string()
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns a [`hex::ParseHexError`] when the string is not exactly 64
    /// hexadecimal characters.
    pub fn parse_hex(s: &str) -> Result<Self, hex::ParseHexError> {
        hex::decode_array::<32>(s).map(Digest32)
    }
}

impl fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest32({})", self.to_hex())
    }
}

impl fmt::Display for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest32 {
    fn from(bytes: [u8; 32]) -> Self {
        Digest32(bytes)
    }
}

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use seldel_crypto::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("length_bytes", &self.length_bytes)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
        self
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest32 {
        DIGESTS_FINALIZED.with(|count| count.set(count.get() + 1));
        let bit_len = self.length_bytes.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.raw_update(&[0x80]);
        while self.buffered != 56 {
            self.raw_update(&[0]);
        }
        self.raw_update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest32(out)
    }

    /// Update without tracking message length (used for padding only).
    fn raw_update(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

std::thread_local! {
    /// SHA-256 digests finalized on this thread (see
    /// [`digests_finalized`]).
    static DIGESTS_FINALIZED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of SHA-256 digests finalized on the calling thread since it
/// started.
///
/// A diagnostics counter: replay-cost tests snapshot it around an
/// operation to pin how many hashes the operation may spend (e.g. the
/// paged store's streaming replay is bounded by one frame checksum per
/// block). Thread-local so concurrently running tests cannot pollute each
/// other's window.
pub fn digests_finalized() -> u64 {
    DIGESTS_FINALIZED.with(|count| count.get())
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: impl AsRef<[u8]>) -> Digest32 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_of(data: &[u8]) -> String {
        sha256(data).to_hex()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex_of(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex_of(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            hex_of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_of(msg),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_of(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot_at_all_boundaries() {
        let data: Vec<u8> = (0u32..300).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 129, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_short_is_five_uppercase_chars() {
        let d = sha256(b"x");
        let s = d.short();
        assert_eq!(s.len(), 5);
        assert!(s
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()));
    }

    #[test]
    fn digest_parse_hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest32::parse_hex(&d.to_hex()).unwrap(), d);
        assert!(Digest32::parse_hex("abcd").is_err());
    }

    #[test]
    fn chunked_update_one_byte_at_a_time() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update([*b]);
        }
        assert_eq!(h.finalize(), sha256(data));
    }
}

//! Arithmetic in GF(2^255 − 19) with radix-2^51 limbs.
//!
//! The representation follows the well-known "five 51-bit limbs in `u64`"
//! layout. Operations are variable-time (documented crate-wide); correctness
//! is what matters for the selective-deletion prototype, and it is enforced
//! by RFC 8032 vectors plus property tests.

use std::fmt;

pub(crate) const MASK: u64 = (1u64 << 51) - 1;

/// `p − 2` as little-endian bytes, the inversion exponent.
const P_MINUS_2: [u8; 32] = [
    0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
];

/// `(p − 5) / 8` as little-endian bytes, the square-root exponent.
const P58: [u8; 32] = [
    0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f,
];

/// An element of GF(2^255 − 19).
#[derive(Clone, Copy)]
pub(crate) struct FieldElement(pub(crate) [u64; 5]);

impl fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldElement({})", crate::hex::encode(self.to_bytes()))
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for FieldElement {}

impl FieldElement {
    pub(crate) const ZERO: FieldElement = FieldElement([0; 5]);
    pub(crate) const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Loads 32 little-endian bytes; bit 255 is ignored (values are taken
    /// modulo 2^255, not modulo p — callers needing canonicality must check
    /// separately via [`FieldElement::is_canonical_encoding`]).
    pub(crate) fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        let load8 = |b: &[u8]| -> u64 {
            let mut word = [0u8; 8];
            word.copy_from_slice(b);
            u64::from_le_bytes(word)
        };
        FieldElement([
            load8(&bytes[0..8]) & MASK,
            (load8(&bytes[6..14]) >> 3) & MASK,
            (load8(&bytes[12..20]) >> 6) & MASK,
            (load8(&bytes[19..27]) >> 1) & MASK,
            (load8(&bytes[24..32]) >> 12) & MASK,
        ])
    }

    /// Returns `true` when `bytes` (with bit 255 cleared) encodes a value
    /// `< p`, i.e. is the canonical encoding of the element it decodes to.
    pub(crate) fn is_canonical_encoding(bytes: &[u8; 32]) -> bool {
        let mut cleared = *bytes;
        cleared[31] &= 0x7f;
        FieldElement::from_bytes(&cleared).to_bytes() == cleared
    }

    /// Canonical 32-byte little-endian encoding (value fully reduced mod p).
    pub(crate) fn to_bytes(self) -> [u8; 32] {
        // Bring limbs below 2^52 first.
        let mut l = carry_once(self.0);
        l = carry_once(l);
        // q = 1 iff value >= p; uses the (value + 19) >> 255 trick.
        let mut q = (l[0].wrapping_add(19)) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        // Carry and discard bit 255, i.e. subtract q*p overall.
        let mut carry = l[0] >> 51;
        l[0] &= MASK;
        l[1] += carry;
        carry = l[1] >> 51;
        l[1] &= MASK;
        l[2] += carry;
        carry = l[2] >> 51;
        l[2] &= MASK;
        l[3] += carry;
        carry = l[3] >> 51;
        l[3] &= MASK;
        l[4] += carry;
        l[4] &= MASK;

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for &limb in &l {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    pub(crate) fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut l = [0u64; 5];
        for (out, (a, b)) in l.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *out = a + b;
        }
        FieldElement(carry_once(l))
    }

    pub(crate) fn sub(&self, rhs: &FieldElement) -> FieldElement {
        // Add 16p before subtracting so all limbs stay non-negative even for
        // weakly-reduced inputs (limbs < 2^52 < 16 * 2^51 - small).
        const SIXTEEN_P: [u64; 5] = [
            36028797018963664, // 16 * (2^51 - 19)
            36028797018963952, // 16 * (2^51 - 1)
            36028797018963952,
            36028797018963952,
            36028797018963952,
        ];
        let mut l = [0u64; 5];
        for (i, out) in l.iter_mut().enumerate() {
            *out = self.0[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(carry_once(carry_once(l)))
    }

    pub(crate) fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    pub(crate) fn mul(&self, rhs: &FieldElement) -> FieldElement {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);

        let r0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        reduce_wide([r0, r1, r2, r3, r4])
    }

    pub(crate) fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// `self^exp` where `exp` is a little-endian byte string.
    pub(crate) fn pow(&self, exp_le: &[u8]) -> FieldElement {
        let mut result = FieldElement::ONE;
        let mut started = false;
        for byte_idx in (0..exp_le.len()).rev() {
            for bit in (0..8).rev() {
                if started {
                    result = result.square();
                }
                if (exp_le[byte_idx] >> bit) & 1 == 1 {
                    if started {
                        result = result.mul(self);
                    } else {
                        result = *self;
                        started = true;
                    }
                }
            }
        }
        result
    }

    /// Multiplicative inverse (`0` maps to `0`).
    pub(crate) fn invert(&self) -> FieldElement {
        self.pow(&P_MINUS_2)
    }

    /// `self^((p-5)/8)`, the core of the decompression square root.
    pub(crate) fn pow_p58(&self) -> FieldElement {
        self.pow(&P58)
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// "Negative" in the RFC 8032 sense: the least significant bit of the
    /// canonical encoding.
    pub(crate) fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }
}

/// One carry pass: brings limbs below 2^52 when inputs are below 2^63.
fn carry_once(mut l: [u64; 5]) -> [u64; 5] {
    let mut c;
    c = l[0] >> 51;
    l[0] &= MASK;
    l[1] += c;
    c = l[1] >> 51;
    l[1] &= MASK;
    l[2] += c;
    c = l[2] >> 51;
    l[2] &= MASK;
    l[3] += c;
    c = l[3] >> 51;
    l[3] &= MASK;
    l[4] += c;
    c = l[4] >> 51;
    l[4] &= MASK;
    l[0] += c * 19;
    l
}

/// Reduces the wide (u128) result of a multiplication.
fn reduce_wide(mut r: [u128; 5]) -> FieldElement {
    const WIDE_MASK: u128 = MASK as u128;
    for _ in 0..2 {
        let mut c: u128 = 0;
        for item in r.iter_mut() {
            *item += c;
            c = *item >> 51;
            *item &= WIDE_MASK;
        }
        r[0] += c * 19;
    }
    let l = [
        r[0] as u64,
        r[1] as u64,
        r[2] as u64,
        r[3] as u64,
        r[4] as u64,
    ];
    FieldElement(carry_once(l))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> FieldElement {
        FieldElement([n, 0, 0, 0, 0])
    }

    #[test]
    fn add_sub_inverse() {
        let a = fe(12345);
        let b = fe(67890);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn sub_underflow_wraps_mod_p() {
        // 0 - 1 == p - 1
        let r = FieldElement::ZERO.sub(&FieldElement::ONE);
        let mut expected = [0xffu8; 32];
        expected[0] = 0xec; // p - 1 = 2^255 - 20
        expected[31] = 0x7f;
        assert_eq!(r.to_bytes(), expected);
    }

    #[test]
    fn mul_matches_small_integers() {
        assert_eq!(fe(7).mul(&fe(11)), fe(77));
        assert_eq!(fe(0).mul(&fe(11)), FieldElement::ZERO);
        assert_eq!(fe(1).mul(&fe(11)), fe(11));
    }

    #[test]
    fn mul_commutative_associative() {
        let a = FieldElement::from_bytes(&[17u8; 32]);
        let b = FieldElement::from_bytes(&[99u8; 32]);
        let c = FieldElement::from_bytes(&[201u8; 32]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn distributive() {
        let a = FieldElement::from_bytes(&[3u8; 32]);
        let b = FieldElement::from_bytes(&[5u8; 32]);
        let c = FieldElement::from_bytes(&[7u8; 32]);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn invert_round_trip() {
        let a = fe(987654321);
        assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
    }

    #[test]
    fn invert_of_two() {
        // 2 * inv(2) == 1
        let two = fe(2);
        let half = two.invert();
        assert_eq!(two.mul(&half), FieldElement::ONE);
    }

    #[test]
    fn p_encodes_as_zero() {
        // p itself: 0xed, 0xff.., 0x7f
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let z = FieldElement::from_bytes(&p_bytes);
        assert!(z.is_zero());
        assert!(!FieldElement::is_canonical_encoding(&p_bytes));
        let one = [1u8; 1];
        let mut canonical = [0u8; 32];
        canonical[0] = one[0];
        assert!(FieldElement::is_canonical_encoding(&canonical));
    }

    #[test]
    fn bit_255_is_ignored_on_load() {
        let mut bytes = [0u8; 32];
        bytes[0] = 5;
        let plain = FieldElement::from_bytes(&bytes);
        bytes[31] |= 0x80;
        let with_sign = FieldElement::from_bytes(&bytes);
        assert_eq!(plain, with_sign);
    }

    #[test]
    fn to_from_bytes_round_trip() {
        let cases = [[0u8; 32], [1u8; 32], [0x55u8; 32], {
            let mut b = [0xffu8; 32];
            b[31] = 0x3f;
            b
        }];
        for bytes in cases {
            let fe = FieldElement::from_bytes(&bytes);
            let fe2 = FieldElement::from_bytes(&fe.to_bytes());
            assert_eq!(fe, fe2);
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        const SQRT_M1: [u8; 32] = [
            0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f, 0xad, 0x06, 0x18,
            0x43, 0x2f, 0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00, 0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f,
            0x80, 0x24, 0x83, 0x2b,
        ];
        let i = FieldElement::from_bytes(&SQRT_M1);
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        assert_eq!(i.square(), minus_one);
    }

    #[test]
    fn pow_small_exponents() {
        let a = fe(3);
        assert_eq!(a.pow(&[0]), FieldElement::ONE);
        assert_eq!(a.pow(&[1]), a);
        assert_eq!(a.pow(&[2]), fe(9));
        assert_eq!(a.pow(&[5]), fe(243));
        assert_eq!(a.pow(&[16]), fe(43046721));
    }
}

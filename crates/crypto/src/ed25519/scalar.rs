//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.

use std::fmt;

use crate::bigint::{add_512, ge_512, mod_512, mul_256, U256, U512};

/// ℓ as little-endian bytes.
#[allow(dead_code)] // referenced by the point-arithmetic test suite
pub(crate) const L_BYTES: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// ℓ as little-endian `u64` limbs (low 4 limbs of a [`U512`]).
const L_LIMBS: U256 = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

fn l_512() -> U512 {
    let mut out = [0u64; 8];
    out[..4].copy_from_slice(&L_LIMBS);
    out
}

/// A scalar reduced modulo ℓ.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scalar(pub(crate) U256);

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar({})", crate::hex::encode(self.to_bytes()))
    }
}

impl Scalar {
    #[allow(dead_code)] // kept for API completeness; used in tests
    pub(crate) const ZERO: Scalar = Scalar([0; 4]);

    /// Reduces a 64-byte little-endian integer modulo ℓ (used for the SHA-512
    /// outputs `r` and `k` in RFC 8032).
    pub(crate) fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut wide = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            wide[i] = u64::from_le_bytes(w);
        }
        let reduced = mod_512(&wide, &l_512());
        Scalar([reduced[0], reduced[1], reduced[2], reduced[3]])
    }

    /// Parses a canonical 32-byte scalar; returns `None` when the value is
    /// `>= ℓ` (RFC 8032 requires rejecting such signatures).
    pub(crate) fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(w);
        }
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&limbs);
        if ge_512(&wide, &l_512()) {
            return None;
        }
        Some(Scalar(limbs))
    }

    /// Reduces a 32-byte little-endian integer modulo ℓ (accepts
    /// non-canonical input, e.g. the clamped secret scalar).
    pub(crate) fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_bytes_wide(&wide)
    }

    /// Canonical little-endian encoding.
    pub(crate) fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// `self * b + c (mod ℓ)` — the signing equation `s = k·a + r`.
    pub(crate) fn mul_add(&self, b: &Scalar, c: &Scalar) -> Scalar {
        let prod = mul_256(&self.0, &b.0);
        let mut c_wide = [0u64; 8];
        c_wide[..4].copy_from_slice(&c.0);
        let sum = add_512(&prod, &c_wide);
        let reduced = mod_512(&sum, &l_512());
        Scalar([reduced[0], reduced[1], reduced[2], reduced[3]])
    }

    #[allow(dead_code)] // kept for API completeness; used in tests
    pub(crate) fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&L_BYTES);
        assert!(Scalar::from_bytes_wide(&wide).is_zero());
    }

    #[test]
    fn l_plus_one_reduces_to_one() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&L_BYTES);
        wide[0] += 1;
        assert_eq!(Scalar::from_bytes_wide(&wide), scalar_from_u64(1));
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut bytes = L_BYTES;
        bytes[0] -= 1;
        assert!(Scalar::from_canonical_bytes(&bytes).is_some());
        assert!(Scalar::from_canonical_bytes(&L_BYTES).is_none());
    }

    #[test]
    fn small_values_canonical() {
        let s = Scalar::from_canonical_bytes(&scalar_from_u64(42).to_bytes()).unwrap();
        assert_eq!(s, scalar_from_u64(42));
    }

    #[test]
    fn mul_add_small() {
        // 3 * 4 + 5 = 17
        let r = scalar_from_u64(3).mul_add(&scalar_from_u64(4), &scalar_from_u64(5));
        assert_eq!(r, scalar_from_u64(17));
    }

    #[test]
    fn mul_add_wraps_mod_l() {
        // (ℓ - 1) * 1 + 2 == 1 (mod ℓ)
        let mut bytes = L_BYTES;
        bytes[0] -= 1;
        let lm1 = Scalar::from_canonical_bytes(&bytes).unwrap();
        let r = lm1.mul_add(&scalar_from_u64(1), &scalar_from_u64(2));
        assert_eq!(r, scalar_from_u64(1));
    }

    #[test]
    fn max_wide_input_reduces() {
        let wide = [0xffu8; 64];
        let s = Scalar::from_bytes_wide(&wide);
        // Result must be canonical.
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
    }

    #[test]
    fn round_trip_bytes() {
        let s = scalar_from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(Scalar::from_canonical_bytes(&s.to_bytes()), Some(s));
    }

    #[test]
    fn from_bytes_mod_order_accepts_clamped_secrets() {
        // A clamped secret has bit 254 set, so it exceeds ℓ; reduction must
        // still produce a canonical scalar with the same value mod ℓ.
        let mut clamped = [0xffu8; 32];
        clamped[0] &= 248;
        clamped[31] &= 127;
        clamped[31] |= 64;
        let s = Scalar::from_bytes_mod_order(&clamped);
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
    }
}

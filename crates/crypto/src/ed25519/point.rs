//! Twisted Edwards curve points for edwards25519 in extended homogeneous
//! coordinates `(X : Y : Z : T)` with `x = X/Z`, `y = Y/Z`, `xy = T/Z`.

use std::fmt;

use super::field::FieldElement;

/// Curve constant `d = -121665/121666 (mod p)`.
const D_BYTES: [u8; 32] = [
    0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75, 0xab, 0xd8, 0x41, 0x41, 0x4d, 0x0a, 0x70, 0x00,
    0x98, 0xe8, 0x79, 0x77, 0x79, 0x40, 0xc7, 0x8c, 0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52,
];

/// `2d (mod p)`.
const D2_BYTES: [u8; 32] = [
    0x59, 0xf1, 0xb2, 0x26, 0x94, 0x9b, 0xd6, 0xeb, 0x56, 0xb1, 0x83, 0x82, 0x9a, 0x14, 0xe0, 0x00,
    0x30, 0xd1, 0xf3, 0xee, 0xf2, 0x80, 0x8e, 0x19, 0xe7, 0xfc, 0xdf, 0x56, 0xdc, 0xd9, 0x06, 0x24,
];

/// `sqrt(-1) (mod p)`.
const SQRT_M1_BYTES: [u8; 32] = [
    0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f, 0xad, 0x06, 0x18, 0x43, 0x2f,
    0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00, 0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b,
];

/// Base point x coordinate.
const BX_BYTES: [u8; 32] = [
    0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9, 0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7, 0x2c, 0x69,
    0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0, 0xfe, 0x53, 0x6e, 0xcd, 0xd3, 0x36, 0x69, 0x21,
];

/// Base point y coordinate (`4/5 mod p`).
const BY_BYTES: [u8; 32] = [
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
];

fn d() -> FieldElement {
    FieldElement::from_bytes(&D_BYTES)
}

fn d2() -> FieldElement {
    FieldElement::from_bytes(&D2_BYTES)
}

fn sqrt_m1() -> FieldElement {
    FieldElement::from_bytes(&SQRT_M1_BYTES)
}

/// A point on edwards25519.
#[derive(Clone, Copy)]
pub(crate) struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

impl fmt::Debug for EdwardsPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdwardsPoint({})", crate::hex::encode(self.compress()))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) && (Y1/Z1 == Y2/Z2) without divisions.
        let x_eq = self.x.mul(&other.z) == other.x.mul(&self.z);
        let y_eq = self.y.mul(&other.z) == other.y.mul(&self.z);
        x_eq && y_eq
    }
}

impl Eq for EdwardsPoint {}

impl EdwardsPoint {
    /// The neutral element (0, 1).
    pub(crate) fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point `B`.
    pub(crate) fn basepoint() -> EdwardsPoint {
        let x = FieldElement::from_bytes(&BX_BYTES);
        let y = FieldElement::from_bytes(&BY_BYTES);
        EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        }
    }

    /// Point addition (add-2008-hwcd-3 for `a = -1`).
    pub(crate) fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&d2()).mul(&other.t);
        let dd = self.z.mul(&other.z).add(&self.z.mul(&other.z));
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point doubling (dbl-2008-hwcd).
    pub(crate) fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let d = a.neg(); // a = -1 twist
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point negation; exercised by the algebraic test suite.
    #[allow(dead_code)]
    pub(crate) fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Variable-time scalar multiplication by a 256-bit little-endian
    /// integer (not necessarily reduced mod ℓ — clamped secrets are fine).
    pub(crate) fn scalar_mul(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for byte_idx in (0..32).rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (scalar_le[byte_idx] >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// `scalar * B` for the standard base point.
    pub(crate) fn mul_base(scalar_le: &[u8; 32]) -> EdwardsPoint {
        EdwardsPoint::basepoint().scalar_mul(scalar_le)
    }

    /// Compresses to the 32-byte RFC 8032 encoding: the `y` coordinate with
    /// the sign of `x` in bit 255.
    pub(crate) fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses an RFC 8032 point encoding.
    ///
    /// Returns `None` for non-canonical `y`, a non-square `x²` candidate, or
    /// the invalid "negative zero" encoding.
    pub(crate) fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        if !FieldElement::is_canonical_encoding(bytes) {
            return None;
        }
        let sign = (bytes[31] >> 7) & 1;
        let y = FieldElement::from_bytes(bytes); // bit 255 ignored by loader
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = d().mul(&yy).add(&FieldElement::ONE);

        // x = u v^3 (u v^7)^((p-5)/8)
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());

        let vxx = v.mul(&x.square());
        if vxx == u {
            // ok
        } else if vxx == u.neg() {
            x = x.mul(&sqrt_m1());
        } else {
            return None;
        }

        if x.is_zero() && sign == 1 {
            return None;
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Whether the point satisfies the curve equation (test invariant)
    /// `-x² + y² = 1 + d·x²·y²` and the extended-coordinate invariant.
    #[allow(dead_code)] // exercised by the algebraic test suite
    pub(crate) fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = FieldElement::ONE.add(&d().mul(&xx).mul(&yy));
        let t_ok = self.t.mul(&self.z) == self.x.mul(&self.y);
        lhs == rhs && t_ok
    }

    #[allow(dead_code)] // exercised by the algebraic test suite
    pub(crate) fn is_identity(&self) -> bool {
        *self == EdwardsPoint::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_le(n: u64) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..8].copy_from_slice(&n.to_le_bytes());
        out
    }

    #[test]
    fn basepoint_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn identity_on_curve() {
        assert!(EdwardsPoint::identity().is_on_curve());
        assert!(EdwardsPoint::identity().is_identity());
    }

    #[test]
    fn add_identity_is_noop() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.add(&EdwardsPoint::identity()), b);
        assert_eq!(EdwardsPoint::identity().add(&b), b);
    }

    #[test]
    fn double_equals_add_self() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
        let b4 = b.double().double();
        assert_eq!(b4, b.add(&b).add(&b).add(&b));
        assert!(b4.is_on_curve());
    }

    #[test]
    fn add_commutative() {
        let b = EdwardsPoint::basepoint();
        let b2 = b.double();
        assert_eq!(b.add(&b2), b2.add(&b));
    }

    #[test]
    fn neg_cancels() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = EdwardsPoint::basepoint();
        assert!(b.scalar_mul(&scalar_le(0)).is_identity());
        assert_eq!(b.scalar_mul(&scalar_le(1)), b);
        assert_eq!(b.scalar_mul(&scalar_le(2)), b.double());
        assert_eq!(b.scalar_mul(&scalar_le(5)), b.double().double().add(&b));
    }

    #[test]
    fn scalar_mul_distributes() {
        // (3 + 4)B == 3B + 4B
        let b = EdwardsPoint::basepoint();
        let lhs = b.scalar_mul(&scalar_le(7));
        let rhs = b
            .scalar_mul(&scalar_le(3))
            .add(&b.scalar_mul(&scalar_le(4)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn order_l_times_base_is_identity() {
        let l = super::super::scalar::L_BYTES;
        assert!(EdwardsPoint::mul_base(&l).is_identity());
    }

    #[test]
    fn compress_decompress_round_trip() {
        for n in [1u64, 2, 3, 42, 987654321] {
            let p = EdwardsPoint::mul_base(&scalar_le(n));
            let bytes = p.compress();
            let q = EdwardsPoint::decompress(&bytes).expect("valid encoding");
            assert_eq!(p, q);
            assert!(q.is_on_curve());
        }
    }

    #[test]
    fn basepoint_compresses_to_known_bytes() {
        // The standard encoding of B: y = 4/5, sign(x) = 0.
        let expected_hex = "5866666666666666666666666666666666666666666666666666666666666666";
        assert_eq!(
            crate::hex::encode(EdwardsPoint::basepoint().compress()),
            expected_hex
        );
    }

    #[test]
    fn decompress_rejects_non_canonical_y() {
        // y = p (non-canonical encoding of 0)
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xed;
        bytes[31] = 0x7f;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_negative_zero() {
        // y = 1 => x = 0; sign bit set must be rejected.
        let mut bytes = [0u8; 32];
        bytes[0] = 1;
        bytes[31] = 0x80;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_off_curve_y() {
        // y = 2 gives x^2 = (4-1)/(4d+1); check whether the implementation
        // accepts only actual squares. If it decompresses, the point must lie
        // on the curve; scan a few ys and assert consistency.
        let mut rejected = 0;
        for y in 2u8..20 {
            let mut bytes = [0u8; 32];
            bytes[0] = y;
            match EdwardsPoint::decompress(&bytes) {
                Some(p) => assert!(p.is_on_curve(), "y={y} decompressed off-curve"),
                None => rejected += 1,
            }
        }
        assert!(rejected > 0, "expected at least one non-square candidate");
    }
}

//! Ed25519 signatures (RFC 8032), implemented from scratch.
//!
//! Every blockchain entry carries the author's public key `K` and a
//! signature `S`; the selective-deletion authorisation rule ("a user is only
//! allowed to submit delete requests for his own transactions", §IV-D1 of
//! the paper) compares these keys and verifies the deletion request's
//! signature. The quorum's master signatures use the same scheme.
//!
//! # Example
//!
//! ```
//! use seldel_crypto::ed25519::SigningKey;
//!
//! let key = SigningKey::from_seed([42u8; 32]);
//! let msg = b"login user=ALPHA terminal=7";
//! let sig = key.sign(msg);
//! key.verifying_key().verify(msg, &sig).expect("fresh signature verifies");
//! assert!(key.verifying_key().verify(b"tampered", &sig).is_err());
//! ```

mod field;
mod point;
mod scalar;

use std::fmt;

use crate::hex;
use crate::sha512::Sha512;
use point::EdwardsPoint;
use scalar::Scalar;

/// Errors arising from signature parsing or verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The 32-byte public key is not a valid curve point encoding.
    InvalidPublicKey,
    /// The `R` component of the signature is not a valid curve point.
    InvalidSignaturePoint,
    /// The `s` component is not a canonical scalar (`s >= ℓ`), which RFC
    /// 8032 requires rejecting to prevent malleability.
    NonCanonicalScalar,
    /// The verification equation `[s]B = R + [k]A` does not hold.
    VerificationFailed,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::InvalidPublicKey => f.write_str("invalid public key encoding"),
            SignatureError::InvalidSignaturePoint => {
                f.write_str("invalid signature point encoding")
            }
            SignatureError::NonCanonicalScalar => f.write_str("signature scalar is not canonical"),
            SignatureError::VerificationFailed => f.write_str("signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A detached Ed25519 signature (`R ‖ s`, 64 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    r_bytes: [u8; 32],
    s_bytes: [u8; 32],
}

impl Signature {
    /// Builds a signature from its 64-byte wire encoding.
    ///
    /// No validation happens here; invalid signatures are rejected during
    /// [`VerifyingKey::verify`].
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        let mut r_bytes = [0u8; 32];
        let mut s_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..32]);
        s_bytes.copy_from_slice(&bytes[32..]);
        Signature { r_bytes, s_bytes }
    }

    /// The 64-byte wire encoding `R ‖ s`.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r_bytes);
        out[32..].copy_from_slice(&self.s_bytes);
        out
    }

    /// Lowercase hex of the wire encoding.
    pub fn to_hex(&self) -> String {
        hex::encode(self.to_bytes())
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", self.to_hex())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// An Ed25519 public key — the `K` field of a blockchain entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VerifyingKey {
    compressed: [u8; 32],
}

impl VerifyingKey {
    /// Parses a compressed public key.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::InvalidPublicKey`] if the bytes do not
    /// decode to a curve point.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<VerifyingKey, SignatureError> {
        EdwardsPoint::decompress(bytes)
            .map(|_| VerifyingKey { compressed: *bytes })
            .ok_or(SignatureError::InvalidPublicKey)
    }

    /// The 32-byte compressed encoding.
    pub const fn to_bytes(&self) -> [u8; 32] {
        self.compressed
    }

    /// The 32-byte compressed encoding, borrowed.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.compressed
    }

    /// Lowercase hex of the compressed key.
    pub fn to_hex(&self) -> String {
        hex::encode(self.compressed)
    }

    /// Short uppercase prefix used by the console renderer (paper Figs 6–8
    /// abbreviate user identities).
    pub fn short(&self) -> String {
        hex::encode_upper(&self.compressed[..3])[..5].to_string()
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// * [`SignatureError::InvalidPublicKey`] — the stored key fails to
    ///   decompress (cannot happen for keys built via `from_bytes`/signing).
    /// * [`SignatureError::InvalidSignaturePoint`] — `R` fails to decompress.
    /// * [`SignatureError::NonCanonicalScalar`] — `s >= ℓ`.
    /// * [`SignatureError::VerificationFailed`] — the equation does not hold.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let a =
            EdwardsPoint::decompress(&self.compressed).ok_or(SignatureError::InvalidPublicKey)?;
        let r = EdwardsPoint::decompress(&signature.r_bytes)
            .ok_or(SignatureError::InvalidSignaturePoint)?;
        let s = Scalar::from_canonical_bytes(&signature.s_bytes)
            .ok_or(SignatureError::NonCanonicalScalar)?;

        let k = challenge_scalar(&signature.r_bytes, &self.compressed, message);

        // [s]B == R + [k]A
        let lhs = EdwardsPoint::mul_base(&s.to_bytes());
        let rhs = r.add(&a.scalar_mul(&k.to_bytes()));
        if lhs == rhs {
            Ok(())
        } else {
            Err(SignatureError::VerificationFailed)
        }
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey({})", self.to_hex())
    }
}

impl fmt::Display for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for VerifyingKey {
    fn as_ref(&self) -> &[u8] {
        &self.compressed
    }
}

/// An Ed25519 private key derived from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    /// Clamped secret scalar `a` (little-endian, as an integer; not reduced
    /// mod ℓ — point multiplication handles the full 255-bit range).
    secret_scalar: [u8; 32],
    /// The `prefix` half of SHA-512(seed), used to derive nonces.
    prefix: [u8; 32],
    verifying: VerifyingKey,
}

impl SigningKey {
    /// Derives a key pair from a seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: [u8; 32]) -> SigningKey {
        let mut h = Sha512::new();
        h.update(seed);
        let digest = h.finalize().into_bytes();

        let mut secret_scalar = [0u8; 32];
        secret_scalar.copy_from_slice(&digest[..32]);
        secret_scalar[0] &= 248;
        secret_scalar[31] &= 127;
        secret_scalar[31] |= 64;

        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&digest[32..]);

        let public_point = EdwardsPoint::mul_base(&secret_scalar);
        let verifying = VerifyingKey {
            compressed: public_point.compress(),
        };

        SigningKey {
            seed,
            secret_scalar,
            prefix,
            verifying,
        }
    }

    /// The seed this key was derived from.
    pub const fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding public key.
    pub const fn verifying_key(&self) -> VerifyingKey {
        self.verifying
    }

    /// Signs `message` (RFC 8032 §5.1.6, deterministic).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let r = {
            let mut h = Sha512::new();
            h.update(self.prefix);
            h.update(message);
            Scalar::from_bytes_wide(h.finalize().as_bytes())
        };
        let r_point = EdwardsPoint::mul_base(&r.to_bytes());
        let r_bytes = r_point.compress();

        let k = challenge_scalar(&r_bytes, &self.verifying.compressed, message);
        let a = Scalar::from_bytes_mod_order(&self.secret_scalar);
        let s = k.mul_add(&a, &r);

        Signature {
            r_bytes,
            s_bytes: s.to_bytes(),
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "SigningKey(public = {})", self.verifying.to_hex())
    }
}

/// `k = SHA-512(R ‖ A ‖ M) mod ℓ`.
fn challenge_scalar(r_bytes: &[u8; 32], a_bytes: &[u8; 32], message: &[u8]) -> Scalar {
    let mut h = Sha512::new();
    h.update(r_bytes);
    h.update(a_bytes);
    h.update(message);
    Scalar::from_bytes_wide(h.finalize().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn seed(hexstr: &str) -> [u8; 32] {
        hex::decode_array::<32>(hexstr).unwrap()
    }

    // RFC 8032 §7.1 TEST 1
    #[test]
    fn rfc8032_test_1_empty_message() {
        let key = SigningKey::from_seed(seed(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            key.verifying_key().to_hex(),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = key.sign(b"");
        assert_eq!(
            sig.to_hex(),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        key.verifying_key().verify(b"", &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 2
    #[test]
    fn rfc8032_test_2_one_byte() {
        let key = SigningKey::from_seed(seed(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            key.verifying_key().to_hex(),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let msg = [0x72u8];
        let sig = key.sign(&msg);
        assert_eq!(
            sig.to_hex(),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        key.verifying_key().verify(&msg, &sig).unwrap();
    }

    // RFC 8032 §7.1 TEST 3
    #[test]
    fn rfc8032_test_3_two_bytes() {
        let key = SigningKey::from_seed(seed(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            key.verifying_key().to_hex(),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xafu8, 0x82];
        let sig = key.sign(&msg);
        assert_eq!(
            sig.to_hex(),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        key.verifying_key().verify(&msg, &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let key = SigningKey::from_seed([9u8; 32]);
        let sig = key.sign(b"original");
        assert_eq!(
            key.verifying_key().verify(b"altered", &sig),
            Err(SignatureError::VerificationFailed)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = SigningKey::from_seed([10u8; 32]);
        let sig = key.sign(b"message");
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 0x01;
        let bad = Signature::from_bytes(&bytes);
        assert!(key.verifying_key().verify(b"message", &bad).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let key1 = SigningKey::from_seed([11u8; 32]);
        let key2 = SigningKey::from_seed([12u8; 32]);
        let sig = key1.sign(b"message");
        assert!(key2.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn non_canonical_s_rejected() {
        let key = SigningKey::from_seed([13u8; 32]);
        let sig = key.sign(b"message");
        let mut bytes = sig.to_bytes();
        // Force s >= ℓ by setting the top byte to 0xff.
        bytes[63] = 0xff;
        let bad = Signature::from_bytes(&bytes);
        assert_eq!(
            key.verifying_key().verify(b"message", &bad),
            Err(SignatureError::NonCanonicalScalar)
        );
    }

    #[test]
    fn signatures_deterministic() {
        let key = SigningKey::from_seed([14u8; 32]);
        assert_eq!(key.sign(b"abc").to_bytes(), key.sign(b"abc").to_bytes());
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = SigningKey::from_seed([1u8; 32]);
        let b = SigningKey::from_seed([2u8; 32]);
        assert_ne!(a.verifying_key(), b.verifying_key());
    }

    #[test]
    fn sign_verify_various_lengths() {
        let key = SigningKey::from_seed([21u8; 32]);
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 127, 128, 300] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let sig = key.sign(&msg);
            key.verifying_key()
                .verify(&msg, &sig)
                .unwrap_or_else(|e| panic!("len {len}: {e}"));
        }
    }

    #[test]
    fn debug_never_leaks_secret() {
        let key = SigningKey::from_seed([3u8; 32]);
        let rendered = format!("{key:?}");
        assert!(!rendered.contains(&hex::encode([3u8; 32])));
        assert!(rendered.contains(&key.verifying_key().to_hex()));
    }

    #[test]
    fn invalid_public_key_encoding_rejected() {
        // y = p (non-canonical) is rejected by decompression.
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xed;
        bytes[31] = 0x7f;
        assert_eq!(
            VerifyingKey::from_bytes(&bytes),
            Err(SignatureError::InvalidPublicKey)
        );
    }
}

//! Binary Merkle trees over SHA-256 with audit proofs.
//!
//! Two uses in the selective-deletion design:
//!
//! * every block header commits to its entries via a Merkle root, and
//! * the 51 %-attack hampering of the paper's Fig. 9 stores the Merkle root
//!   of a **middle sequence** (ω_{lβ/2}) inside the merging summary block,
//!   so pruned history keeps at least lβ/2 confirmations.
//!
//! Leaves and interior nodes are domain-separated (prefix `0x00` / `0x01`)
//! to rule out second-preimage splicing attacks. Odd nodes are promoted one
//! level (no duplication), so proofs are unambiguous.

use std::fmt;

use crate::sha256::{Digest32, Sha256};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hashes a leaf payload with domain separation.
pub fn leaf_hash(data: impl AsRef<[u8]>) -> Digest32 {
    let mut h = Sha256::new();
    h.update([LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

/// Hashes two child digests with domain separation.
pub fn node_hash(left: &Digest32, right: &Digest32) -> Digest32 {
    let mut h = Sha256::new();
    h.update([NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A Merkle tree with stored levels, supporting proof extraction.
///
/// # Example
///
/// ```
/// use seldel_crypto::MerkleTree;
///
/// let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b", b"c"]);
/// let proof = tree.prove(2).unwrap();
/// assert!(proof.verify(b"c", &tree.root()));
/// assert!(!proof.verify(b"x", &tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests, last level = `[root]`.
    levels: Vec<Vec<Digest32>>,
}

impl MerkleTree {
    /// Builds a tree over raw leaf payloads.
    ///
    /// An empty input yields the conventional "empty root": the hash of the
    /// empty string with the leaf prefix.
    pub fn from_leaves<I, T>(leaves: I) -> MerkleTree
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let digests: Vec<Digest32> = leaves.into_iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(digests)
    }

    /// Builds a tree over already-hashed leaves (e.g. block hashes when
    /// anchoring a whole sequence).
    pub fn from_leaf_hashes(digests: Vec<Digest32>) -> MerkleTree {
        if digests.is_empty() {
            return MerkleTree {
                levels: vec![vec![leaf_hash([])]],
            };
        }
        let mut levels = vec![digests];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(node_hash(&prev[i], &prev[i + 1]));
                i += 2;
            }
            if i < prev.len() {
                // Odd node: promote unchanged.
                next.push(prev[i]);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest32 {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree was built over zero leaves.
    pub fn is_empty(&self) -> bool {
        // The empty tree is encoded as a single sentinel leaf.
        self.levels.len() == 1 && self.levels[0][0] == leaf_hash([])
    }

    /// Extracts an audit proof for leaf `index`.
    ///
    /// Returns `None` when `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                let side = if idx.is_multiple_of(2) {
                    Side::Right
                } else {
                    Side::Left
                };
                path.push((side, level[sibling]));
            }
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }
}

/// Which side a sibling digest is combined on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The sibling is the left child; the accumulator is the right.
    Left,
    /// The sibling is the right child; the accumulator is the left.
    Right,
}

/// An audit path proving membership of one leaf under a root.
#[derive(Clone, PartialEq, Eq)]
pub struct MerkleProof {
    index: usize,
    path: Vec<(Side, Digest32)>,
}

impl fmt::Debug for MerkleProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MerkleProof")
            .field("index", &self.index)
            .field("path_len", &self.path.len())
            .finish()
    }
}

impl MerkleProof {
    /// Reassembles a proof from its parts (the inverse of
    /// [`MerkleProof::path`] + [`MerkleProof::index`]) — the hook for wire
    /// codecs living outside this crate. An assembled proof carries no
    /// guarantee of validity; it simply verifies or does not.
    pub fn from_parts(index: usize, path: Vec<(Side, Digest32)>) -> MerkleProof {
        MerkleProof { index, path }
    }

    /// Leaf index this proof commits to.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The audit path, leaf level first.
    pub fn path(&self) -> &[(Side, Digest32)] {
        &self.path
    }

    /// Path length (tree height along this branch).
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// Verifies the proof for a raw leaf payload.
    pub fn verify(&self, leaf: impl AsRef<[u8]>, root: &Digest32) -> bool {
        self.verify_leaf_hash(&leaf_hash(leaf), root)
    }

    /// Verifies the proof for an already-hashed leaf.
    pub fn verify_leaf_hash(&self, leaf: &Digest32, root: &Digest32) -> bool {
        if !self.is_branch_consistent() {
            return false;
        }
        let mut acc = *leaf;
        for (side, sibling) in &self.path {
            acc = match side {
                Side::Left => node_hash(sibling, &acc),
                Side::Right => node_hash(&acc, sibling),
            };
        }
        acc == *root
    }

    /// Checks that `index` and the side sequence describe the same branch.
    ///
    /// The sibling sides alone drive hashing, so without this check the
    /// index would be advisory: a relabelled index would still verify,
    /// letting one byte string stand for two different claims. The walk
    /// mirrors [`MerkleTree::prove`]: a `Right` sibling means the branch
    /// was an even node, a `Left` sibling an odd one, and sibling-less
    /// trailing nodes (odd promotion) emit nothing — they can only precede
    /// a `Left` step, consumed here by halving while even.
    fn is_branch_consistent(&self) -> bool {
        let mut idx = self.index;
        for (side, _) in &self.path {
            match side {
                Side::Right => {
                    if !idx.is_multiple_of(2) {
                        return false;
                    }
                    idx /= 2;
                }
                Side::Left => {
                    while idx != 0 && idx.is_multiple_of(2) {
                        idx /= 2;
                    }
                    if idx.is_multiple_of(2) {
                        return false;
                    }
                    idx /= 2;
                }
            }
        }
        idx == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("leaf-{i}")).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves([b"only"]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn empty_tree_has_sentinel_root() {
        let tree = MerkleTree::from_leaves(Vec::<&[u8]>::new());
        assert!(tree.is_empty());
        assert_eq!(tree.root(), leaf_hash([]));
    }

    #[test]
    fn two_leaves() {
        let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        assert_eq!(tree.root(), node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let leaves = strs(n);
            let tree = MerkleTree::from_leaves(leaves.iter().map(|s| s.as_bytes()));
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i).expect("in bounds");
                assert!(
                    proof.verify(leaf.as_bytes(), &tree.root()),
                    "size {n} index {i}"
                );
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf() {
        let leaves = strs(8);
        let tree = MerkleTree::from_leaves(leaves.iter().map(|s| s.as_bytes()));
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(b"not-the-leaf", &tree.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let tree = MerkleTree::from_leaves(strs(5).iter().map(|s| s.as_bytes()));
        let other = MerkleTree::from_leaves(strs(6).iter().map(|s| s.as_bytes()));
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(b"leaf-2", &other.root()));
    }

    #[test]
    fn out_of_bounds_proof_is_none() {
        let tree = MerkleTree::from_leaves(strs(3).iter().map(|s| s.as_bytes()));
        assert!(tree.prove(3).is_none());
    }

    #[test]
    fn index_bit_flips_are_rejected() {
        // A valid index carries exactly one set bit per `Left` step, so
        // flipping any single bit breaks consistency with the sides. (Odd
        // promotion does leave the index ambiguous across *popcount-
        // preserving* rewrites for right-edge leaves — callers that bind a
        // position, like in-block entry proofs, must compare the index to
        // the claimed subject themselves.)
        for n in 1..=17 {
            let leaves = strs(n);
            let tree = MerkleTree::from_leaves(leaves.iter().map(|s| s.as_bytes()));
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                for bit in 0..8 {
                    let forged = MerkleProof::from_parts(i ^ (1 << bit), proof.path().to_vec());
                    assert!(
                        !forged.verify(leaf.as_bytes(), &tree.root()),
                        "size {n}: proof for {i} verified with bit {bit} flipped"
                    );
                }
            }
        }
    }

    #[test]
    fn roots_differ_when_any_leaf_changes() {
        let base = MerkleTree::from_leaves(strs(9).iter().map(|s| s.as_bytes()));
        for i in 0..9 {
            let mut leaves = strs(9);
            leaves[i] = "mutated".to_string();
            let tree = MerkleTree::from_leaves(leaves.iter().map(|s| s.as_bytes()));
            assert_ne!(tree.root(), base.root(), "mutation at {i} undetected");
        }
    }

    #[test]
    fn order_matters() {
        let a = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let b = MerkleTree::from_leaves([b"b".as_slice(), b"a"]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_domains_separated() {
        // A leaf whose payload equals the concatenation of two digests must
        // not produce the same hash as the interior node of those digests.
        let l = leaf_hash(b"x");
        let r = leaf_hash(b"y");
        let mut concat = Vec::new();
        concat.extend_from_slice(l.as_bytes());
        concat.extend_from_slice(r.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&l, &r));
    }

    #[test]
    fn from_leaf_hashes_matches_from_leaves() {
        let leaves = strs(7);
        let a = MerkleTree::from_leaves(leaves.iter().map(|s| s.as_bytes()));
        let b =
            MerkleTree::from_leaf_hashes(leaves.iter().map(|s| leaf_hash(s.as_bytes())).collect());
        assert_eq!(a.root(), b.root());
    }
}

//! Minimal fixed-width big-integer helpers used by the Ed25519 scalar
//! arithmetic (crate-private).
//!
//! Values are little-endian `u64` limb arrays. Only the operations needed
//! for reduction modulo the group order ℓ are provided: 256×256→512-bit
//! multiplication, 512-bit add/sub/compare and single-bit shifts.

/// 512-bit unsigned integer as 8 little-endian limbs.
pub(crate) type U512 = [u64; 8];

/// 256-bit unsigned integer as 4 little-endian limbs.
pub(crate) type U256 = [u64; 4];

/// Schoolbook 256×256→512-bit multiplication.
pub(crate) fn mul_256(a: &U256, b: &U256) -> U512 {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let cur = out[i + j] as u128 + (a[i] as u128) * (b[j] as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + 4;
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// `a + b`, wrapping on 512-bit overflow (callers guarantee no overflow).
pub(crate) fn add_512(a: &U512, b: &U512) -> U512 {
    let mut out = [0u64; 8];
    let mut carry: u128 = 0;
    for i in 0..8 {
        let cur = a[i] as u128 + b[i] as u128 + carry;
        out[i] = cur as u64;
        carry = cur >> 64;
    }
    debug_assert_eq!(carry, 0, "512-bit addition overflow");
    out
}

/// `a - b`; caller must ensure `a >= b`.
pub(crate) fn sub_512(a: &U512, b: &U512) -> U512 {
    let mut out = [0u64; 8];
    let mut borrow: i128 = 0;
    for i in 0..8 {
        let cur = a[i] as i128 - b[i] as i128 - borrow;
        if cur < 0 {
            out[i] = (cur + (1i128 << 64)) as u64;
            borrow = 1;
        } else {
            out[i] = cur as u64;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "512-bit subtraction underflow");
    out
}

/// Returns `true` when `a >= b`.
pub(crate) fn ge_512(a: &U512, b: &U512) -> bool {
    for i in (0..8).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Logical left shift by `bits` (0..512).
pub(crate) fn shl_512(a: &U512, bits: usize) -> U512 {
    debug_assert!(bits < 512);
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    let mut out = [0u64; 8];
    for i in (0..8).rev() {
        if i < limb_shift {
            continue;
        }
        let src = i - limb_shift;
        let mut v = a[src] << bit_shift;
        if bit_shift > 0 && src > 0 {
            v |= a[src - 1] >> (64 - bit_shift);
        }
        out[i] = v;
    }
    out
}

/// Logical right shift by one bit.
pub(crate) fn shr1_512(a: &U512) -> U512 {
    let mut out = [0u64; 8];
    for i in 0..8 {
        out[i] = a[i] >> 1;
        if i + 1 < 8 {
            out[i] |= a[i + 1] << 63;
        }
    }
    out
}

/// Index of the highest set bit, or `None` for zero.
pub(crate) fn top_bit(a: &U512) -> Option<usize> {
    for i in (0..8).rev() {
        if a[i] != 0 {
            return Some(i * 64 + 63 - a[i].leading_zeros() as usize);
        }
    }
    None
}

/// `a mod m` by binary long division. `m` must be non-zero.
pub(crate) fn mod_512(a: &U512, m: &U512) -> U512 {
    let mut rem = *a;
    let m_top = top_bit(m).expect("modulus must be non-zero");
    loop {
        let Some(r_top) = top_bit(&rem) else {
            return rem;
        };
        if r_top < m_top {
            return rem;
        }
        let mut shift = r_top - m_top;
        let mut shifted = shl_512(m, shift);
        // shl may have pushed the top bit past rem; step back if so.
        if !ge_512(&rem, &shifted) {
            if shift == 0 {
                return rem;
            }
            shift -= 1;
            shifted = shr1_512(&shifted);
        }
        loop {
            if ge_512(&rem, &shifted) {
                rem = sub_512(&rem, &shifted);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
            shifted = shr1_512(&shifted);
        }
        if top_bit(&rem).map(|t| t < m_top).unwrap_or(true) {
            return rem;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u128(v: u128) -> U512 {
        let mut out = [0u64; 8];
        out[0] = v as u64;
        out[1] = (v >> 64) as u64;
        out
    }

    fn to_u128(v: &U512) -> u128 {
        assert!(v[2..].iter().all(|&l| l == 0));
        (v[0] as u128) | ((v[1] as u128) << 64)
    }

    #[test]
    fn mul_small() {
        let a = [3, 0, 0, 0];
        let b = [7, 0, 0, 0];
        assert_eq!(mul_256(&a, &b)[0], 21);
    }

    #[test]
    fn mul_cross_limb() {
        let a = [u64::MAX, 0, 0, 0];
        let b = [u64::MAX, 0, 0, 0];
        let r = mul_256(&a, &b);
        let expected = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(to_u128(&r), expected);
    }

    #[test]
    fn mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let a = [u64::MAX; 4];
        let r = mul_256(&a, &a);
        assert_eq!(r[0], 1);
        assert_eq!(r[1], 0);
        assert_eq!(r[2], 0);
        assert_eq!(r[3], 0);
        assert_eq!(r[4], u64::MAX - 1);
        assert_eq!(r[5], u64::MAX);
        assert_eq!(r[6], u64::MAX);
        assert_eq!(r[7], u64::MAX);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = from_u128(123456789123456789);
        let b = from_u128(987654321);
        let s = add_512(&a, &b);
        assert_eq!(sub_512(&s, &b), a);
    }

    #[test]
    fn shifts() {
        let a = from_u128(0x8000_0000_0000_0001);
        let l = shl_512(&a, 65);
        assert_eq!(l[1], 2);
        assert_eq!(l[2], 1);
        assert_eq!(shr1_512(&shl_512(&a, 1)), a);
    }

    #[test]
    fn shl_across_many_limbs() {
        let a = from_u128(1);
        let l = shl_512(&a, 300);
        assert_eq!(top_bit(&l), Some(300));
    }

    #[test]
    fn mod_matches_u128_arithmetic() {
        let cases: [(u128, u128); 6] = [
            (0, 97),
            (96, 97),
            (97, 97),
            (98, 97),
            (123456789123456789123456789, 1000000007),
            (u128::MAX, 0xffff_ffff_ffff_fffe),
        ];
        for (a, m) in cases {
            let r = mod_512(&from_u128(a), &from_u128(m));
            assert_eq!(to_u128(&r), a % m, "case {a} mod {m}");
        }
    }

    #[test]
    fn top_bit_cases() {
        assert_eq!(top_bit(&[0; 8]), None);
        assert_eq!(top_bit(&from_u128(1)), Some(0));
        assert_eq!(top_bit(&from_u128(2)), Some(1));
        let mut high = [0u64; 8];
        high[7] = 1 << 63;
        assert_eq!(top_bit(&high), Some(511));
    }
}

//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the node layer to authenticate synchronisation-check tokens
//! between anchor nodes without a full signature.

use crate::sha256::{Digest32, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use seldel_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest32 {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(opad);
    h.update(inner.as_bytes());
    h.finalize()
}

/// Constant-shape comparison of two MACs.
///
/// Not strictly constant-time at the instruction level, but avoids
/// short-circuiting on the first mismatching byte.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &Digest32) -> bool {
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(tag.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let msg = [0xcd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        let mut bad = tag.into_bytes();
        bad[31] ^= 1;
        assert!(!verify_hmac_sha256(
            b"k",
            b"m",
            &hex::decode_array::<32>(&crate::hex::encode(bad))
                .map(Digest32::from_bytes)
                .unwrap()
        ));
    }
}

//! Property and concurrency coverage for the telemetry histogram.

use proptest::prelude::*;

use seldel_telemetry::{Histogram, HIST_BUCKETS};

proptest! {
    /// Every recorded value lands in a bucket whose inclusive range
    /// contains it, regardless of magnitude.
    #[test]
    fn recorded_value_falls_in_its_bucket(value in any::<u64>()) {
        let i = Histogram::bucket_index(value);
        prop_assert!(i < HIST_BUCKETS);
        let (low, high) = Histogram::bucket_range(i);
        prop_assert!(low <= value && value <= high,
            "{value} outside bucket {i} = [{low}, {high}]");
        // Buckets partition the u64 line: the neighbours must not claim it.
        if i > 0 {
            prop_assert!(Histogram::bucket_range(i - 1).1 < value);
        }
        if i + 1 < HIST_BUCKETS {
            prop_assert!(value < Histogram::bucket_range(i + 1).0);
        }
    }

    /// Quantiles never decrease as p grows, the p100 quantile is the
    /// exact maximum, and every quantile stays within [min bucket low,
    /// max] of the recorded data.
    #[test]
    fn quantiles_monotone_and_bounded(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let max = *values.iter().max().expect("non-empty");
        let mut last = 0u64;
        for p in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let q = h.quantile(p);
            prop_assert!(q >= last, "quantile dipped at p={p}: {q} < {last}");
            prop_assert!(q <= max, "quantile {q} above recorded max {max}");
            last = q;
        }
        prop_assert_eq!(h.quantile(100.0), max);
    }
}

/// Concurrent recorders under `std::thread::scope` must lose no
/// observations (relaxed atomics still count exactly — only ordering is
/// relaxed, not arithmetic). Gated on core count: the CI container
/// reports a single CPU, where a thread fan-out proves nothing.
#[test]
fn concurrent_recording_loses_nothing() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(4);
    if threads < 2 {
        eprintln!("skipping concurrent smoke: single-core host");
        return;
    }
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread values across many buckets.
                    h.record((t * PER_THREAD + i) % 4096);
                }
            });
        }
    });
    let expected = threads as u64 * PER_THREAD;
    assert_eq!(h.count(), expected);
    let bucket_total: u64 = (0..HIST_BUCKETS).map(|i| h.bucket_count(i)).sum();
    assert_eq!(bucket_total, expected);
    assert_eq!(h.max(), 4095);
}

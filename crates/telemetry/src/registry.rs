//! The [`Registry`]: a name → metric map with get-or-create semantics,
//! plus the frozen [`TelemetrySnapshot`] it produces.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// One registered metric. A name is bound to exactly one kind for the
/// registry's lifetime; asking for the same name as a different kind is
/// a programming error and panics.
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// [`Registry::global`] is the process-wide instance the recording
/// macros use; [`Registry::new`] builds private instances for objects
/// that keep their own always-on counters (e.g. an anchor node's
/// stats). Lookup takes a mutex, so call sites should cache the
/// returned `Arc` (the macros do this per call site).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty, private registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry the recording macros write to.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Freezes every registered metric into a name-sorted snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = TelemetrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    p50: h.quantile(50.0),
                    p95: h.quantile(95.0),
                    p99: h.quantile(99.0),
                }),
            }
        }
        // BTreeMap iteration is already name-sorted; the per-kind vectors
        // inherit that order.
        snap
    }

    /// Zeroes every registered metric's value. Handles cached at call
    /// sites stay valid — the metrics themselves are reset, not
    /// replaced — so tests and bench collection passes can delimit an
    /// epoch without tearing down the process.
    pub fn reset(&self) {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// A counter's frozen name and value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// A gauge's frozen name and value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A histogram's frozen summary: count, sum, exact max and nearest-rank
/// quantiles resolved to bucket upper bounds (see [`crate::Histogram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Dotted metric name (span histograms end in `.ns`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Nearest-rank 50th percentile (bucket upper bound, clamped to max).
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Every metric in a registry, frozen at one instant and name-sorted
/// within each kind. Render with [`render_text`](Self::render_text) or
/// [`render_json`](Self::render_json) (in `render.rs`), or query single
/// metrics with the accessors below.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The named counter's value, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named gauge's value, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram's summary, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let reg = Registry::new();
        reg.counter("a.b").add(3);
        reg.counter("a.b").add(4);
        assert_eq!(reg.counter("a.b").get(), 7);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.depth").set(5);
        reg.histogram("t.ns").record(1000);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.counter("a.first"), Some(2));
        assert_eq!(snap.gauge("m.depth"), Some(5));
        let h = snap.histogram("t.ns").expect("registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.p50, 1000); // single value: every quantile is it
        assert!(snap.counter("missing").is_none());
    }

    #[test]
    fn reset_keeps_cached_handles_live() {
        let reg = Registry::new();
        let c = reg.counter("keep.me");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(reg.snapshot().counter("keep.me"), Some(2));
    }
}

//! The metric primitives: [`Counter`], [`Gauge`] and the power-of-two
//! log-bucketed [`Histogram`].
//!
//! All state is relaxed atomics. The types themselves record
//! **unconditionally** — the [`enabled`](crate::enabled) gate lives in
//! the global-registry macros, so local registries (e.g. an anchor
//! node's per-instance stats) keep counting with telemetry off.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (snapshot epochs in tests/benches).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-written-value (or high-water-mark) measurement.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to at least `v` (high-water mark).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Buckets in a [`Histogram`]: one for zero plus one per bit position.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-footprint latency/size histogram with power-of-two buckets.
///
/// Bucket 0 holds exactly the value `0`; bucket `i ≥ 1` holds the range
/// `[2^(i-1), 2^i - 1]`. Recording is three relaxed `fetch_add`s plus a
/// `fetch_max`; quantiles are resolved at read time by a nearest-rank
/// walk over the bucket counts (see [`Histogram::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index holding `value`: 0 for 0, else `⌊log2 v⌋ + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[low, high]` range of values bucket `index` holds.
    ///
    /// # Panics
    ///
    /// When `index >= HIST_BUCKETS`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < HIST_BUCKETS, "bucket index out of range");
        if index == 0 {
            return (0, 0);
        }
        let low = 1u64 << (index - 1);
        let high = if index == HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (low, high)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping on overflow — latencies in
    /// nanoseconds would need ~585 years of recorded time to wrap).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// One bucket's current count.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// The bucket holding the nearest-rank `p`-th percentile: with `n`
    /// recorded values the rank is `k = ceil(p/100 · n)` (clamped to
    /// `[1, n]`), and the answer is the first bucket whose cumulative
    /// count reaches `k`. `None` when the histogram is empty.
    pub fn quantile_bucket(&self, p: f64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let k = (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= k {
                return Some(i);
            }
        }
        // Racing recorders can leave count ahead of the bucket sums for a
        // moment; answer with the last non-empty bucket.
        (0..HIST_BUCKETS).rev().find(|&i| self.bucket_count(i) > 0)
    }

    /// The nearest-rank `p`-th percentile, resolved to the holding
    /// bucket's inclusive upper bound and clamped to the exact maximum
    /// (so `quantile(100.0) == max()`). 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        match self.quantile_bucket(p) {
            Some(bucket) => Self::bucket_range(bucket).1.min(self.max()),
            None => 0,
        }
    }

    /// Zeroes every bucket and the summary stats.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.raise(8);
        assert_eq!(g.get(), 8);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn bucket_index_and_range_agree() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (low, high) = Histogram::bucket_range(i);
            assert!(
                low <= v && v <= high,
                "{v} outside bucket {i} [{low},{high}]"
            );
        }
    }

    #[test]
    fn quantiles_are_nearest_rank_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50.0), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // k = 50 → value 50 → bucket [32, 63].
        assert_eq!(h.quantile(50.0), 63);
        // k = 99 → value 99 → bucket [64, 127], clamped to max 100.
        assert_eq!(h.quantile(99.0), 100);
        assert_eq!(h.quantile(100.0), 100);
        // k = 1 → value 1 → bucket {1}.
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 17, 17, 200, 3000, 65_536, 1 << 40] {
            h.record(v);
        }
        let mut last = 0;
        for p in 0..=100 {
            let q = h.quantile(f64::from(p));
            assert!(q >= last, "quantile dipped at p={p}: {q} < {last}");
            last = q;
        }
        assert_eq!(h.quantile(100.0), 1 << 40);
    }
}

//! Stable text and JSON renderings of a [`TelemetrySnapshot`], plus a
//! dependency-free JSON well-formedness checker for smoke tests.

use crate::registry::TelemetrySnapshot;

/// Format version stamped into the JSON rendering, bumped on any shape
/// change so downstream parsers can detect drift.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

impl TelemetrySnapshot {
    /// Deterministic human-readable rendering: one metric per line,
    /// name-sorted within each kind, histograms with count/mean/p50/
    /// p95/p99/max. Empty snapshots render a single marker line.
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return "telemetry: no metrics recorded\n".to_string();
        }
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("counter   {:<40} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("gauge     {:<40} {}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {:<40} count={} mean={:.0} p50={} p95={} p99={} max={}\n",
                h.name,
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        out
    }

    /// Deterministic JSON rendering:
    ///
    /// ```json
    /// {
    ///   "telemetry_version": 1,
    ///   "counters": [{"name": "fstore.cache.hit", "value": 42}],
    ///   "gauges": [{"name": "fstore.commit.queue_depth", "value": 3}],
    ///   "histograms": [{"name": "fstore.fsync.ns", "count": 10,
    ///                   "sum": 12345, "max": 2048,
    ///                   "p50": 1023, "p95": 2047, "p99": 2048}]
    /// }
    /// ```
    ///
    /// Metric names never need escaping (dotted lowercase identifiers)
    /// and all values are unsigned integers, so the output is plain
    /// `format!` concatenation — no serializer required.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"telemetry_version\": {SNAPSHOT_FORMAT_VERSION},\n"
        ));
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                c.name, c.value
            ));
        }
        out.push_str(if self.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                g.name, g.value
            ));
        }
        out.push_str(if self.gauges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.name, h.count, h.sum, h.max, h.p50, h.p95, h.p99
            ));
        }
        out.push_str(if self.histograms.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Checks that `input` is one well-formed JSON value (object, array,
/// string, number, boolean or null) with nothing but whitespace after
/// it. A recursive-descent validator, not a parser: smoke tests use it
/// to assert snapshots and bench reports parse without pulling in a
/// JSON library.
pub fn json_is_well_formed(input: &str) -> bool {
    let bytes = input.as_bytes();
    let mut pos = 0;
    if !skip_value(bytes, &mut pos, 0) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

/// Nesting ceiling for the validator: telemetry/bench JSON is ~3 deep;
/// anything past this is garbage, not data.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn skip_value(bytes: &[u8], pos: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH {
        return false;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => skip_container(bytes, pos, depth, b'}', true),
        Some(b'[') => skip_container(bytes, pos, depth, b']', false),
        Some(b'"') => skip_string(bytes, pos),
        Some(b't') => skip_literal(bytes, pos, b"true"),
        Some(b'f') => skip_literal(bytes, pos, b"false"),
        Some(b'n') => skip_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => skip_number(bytes, pos),
        _ => false,
    }
}

/// Objects (`keyed`) and arrays share one loop: `open` is consumed by
/// the caller's peek, entries are comma-separated values, objects
/// additionally require a `"key":` prefix on each entry.
fn skip_container(bytes: &[u8], pos: &mut usize, depth: usize, close: u8, keyed: bool) -> bool {
    *pos += 1; // the opening brace/bracket
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&close) {
        *pos += 1;
        return true;
    }
    loop {
        if keyed {
            skip_ws(bytes, pos);
            if !skip_string(bytes, pos) {
                return false;
            }
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return false;
            }
            *pos += 1;
        }
        if !skip_value(bytes, pos, depth + 1) {
            return false;
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(&c) if c == close => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn skip_string(bytes: &[u8], pos: &mut usize) -> bool {
    if bytes.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => *pos += 2, // skip the escaped byte; \uXXXX hex is lexed as plain chars
            _ => *pos += 1,
        }
    }
    false
}

fn skip_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn skip_number(bytes: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let reg = Registry::new();
        reg.counter("fstore.cache.hit").add(42);
        reg.counter("fstore.cache.miss").add(7);
        reg.gauge("fstore.commit.queue_depth").set(3);
        let h = reg.histogram("fstore.fsync.ns");
        for v in [800u64, 1000, 1500, 2000, 90_000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn text_rendering_is_stable_and_complete() {
        let text = sample_snapshot().render_text();
        assert!(text.contains("counter   fstore.cache.hit"));
        assert!(text.contains("42"));
        assert!(text.contains("gauge     fstore.commit.queue_depth"));
        assert!(text.contains("histogram fstore.fsync.ns"));
        assert!(text.contains("count=5"));
        assert!(text.contains("max=90000"));
        assert_eq!(text, sample_snapshot().render_text());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample_snapshot().render_json();
        assert!(json_is_well_formed(&json), "bad JSON:\n{json}");
        assert!(json.contains("\"telemetry_version\": 1"));
        assert!(json.contains("\"name\": \"fstore.cache.hit\", \"value\": 42"));
        assert!(json.contains("\"name\": \"fstore.fsync.ns\", \"count\": 5"));
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = TelemetrySnapshot::default();
        assert_eq!(snap.render_text(), "telemetry: no metrics recorded\n");
        assert!(json_is_well_formed(&snap.render_json()));
    }

    #[test]
    fn well_formedness_checker_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e3",
            r#"{"a": [1, 2, {"b": "c\"d"}], "e": null}"#,
            "  {\"x\": 1}  ",
        ] {
            assert!(json_is_well_formed(good), "rejected good JSON: {good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": }",
            "tru",
            "1 2",
            "{\"a\": 1} extra",
            "\"unterminated",
            "- 1",
            "1.",
        ] {
            assert!(!json_is_well_formed(bad), "accepted bad JSON: {bad}");
        }
    }
}

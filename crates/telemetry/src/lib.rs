//! Process-wide telemetry for the selective-deletion stack: a named
//! [`Registry`] of [`Counter`]s, [`Gauge`]s and log-bucketed latency
//! [`Histogram`]s, plus lightweight scoped spans ([`span!`]) recording
//! durations into histograms.
//!
//! Hand-rolled and dependency-free, like every other shim in this
//! workspace: no `metrics`, no `tracing`, no serde. The design goals, in
//! order:
//!
//! 1. **Near-zero cost when disabled.** Telemetry is off unless the
//!    `SELDEL_TELEMETRY` environment variable (or [`set_enabled`]) turns
//!    it on. Every recording macro checks [`enabled`] first — one relaxed
//!    atomic load and a predictable branch — and a disabled [`span!`]
//!    never even reads the clock. Benches therefore run unperturbed by
//!    default.
//! 2. **Cheap when enabled.** All metric state is relaxed atomics; a hot
//!    counter bump is one `fetch_add(Relaxed)`, a histogram record is
//!    three. Call sites cache their metric handle in a `OnceLock`, so the
//!    registry's name lookup happens once per site, not per event.
//! 3. **One stable surface.** [`Registry::snapshot`] freezes every metric
//!    into a [`TelemetrySnapshot`] with deterministic (name-sorted) text
//!    and JSON renderings, so benches can embed a telemetry section in
//!    their `BENCH_*.json` and sims can assert on internals.
//!
//! # Metric naming
//!
//! Dotted lowercase paths, `<subsystem>.<thing>[.<aspect>]`:
//! `fstore.cache.hit`, `chain.prune.blocks`, `ledger.seal.ns`. Histograms
//! fed by [`span!`] always end in `.ns` (they hold nanoseconds).
//!
//! # Quantiles
//!
//! Histograms bucket by power of two (bucket 0 holds exactly `0`, bucket
//! *i* ≥ 1 holds `[2^(i-1), 2^i)`), so p50/p95/p99 are **nearest-rank**
//! quantiles resolved to the holding bucket's inclusive upper bound: with
//! `n` recorded values, the rank is `k = ceil(p/100 · n)` and the answer
//! is the upper bound of the bucket containing the `k`-th smallest value
//! (clamped to the exactly-tracked maximum). `seldel-sim`'s
//! [`percentile`](../seldel_sim/metrics/fn.percentile.html) uses the same
//! rank definition over raw samples, and a property test cross-checks the
//! two bucket for bucket.
//!
//! # Global vs local registries
//!
//! Hot paths record into [`Registry::global`] through the macros. Local
//! [`Registry::new`] instances are for per-object counters that must work
//! regardless of the global switch — e.g. an anchor node's
//! `AnchorStats`, which predate this crate and are pinned by tests: the
//! metric *types* record unconditionally; only the global macros gate on
//! [`enabled`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod render;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HIST_BUCKETS};
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Registry, TelemetrySnapshot,
};
pub use render::json_is_well_formed;
pub use span::SpanGuard;

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable switching telemetry on for the whole process:
/// `on`, `1`, `true` or `yes` (case-insensitive) enable it; anything
/// else — including unset — leaves it off. Read once, at the first
/// [`enabled`] call; [`set_enabled`] overrides it at any time.
pub const TELEMETRY_ENV: &str = "SELDEL_TELEMETRY";

/// 0 = not yet initialised from the environment, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether global telemetry recording is on.
///
/// The hot-path gate: one relaxed load in the steady state. The first
/// call initialises the flag from [`TELEMETRY_ENV`].
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        state => state == 2,
    }
}

/// Cold path of [`enabled`]: resolves the environment variable once.
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(TELEMETRY_ENV).is_ok_and(|v| {
        matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "on" | "1" | "true" | "yes"
        )
    });
    // A racing `set_enabled` wins: only replace the uninitialised state.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Forces global telemetry on or off, overriding the environment. Used
/// by tests, the CI smoke suites and the benches' telemetry collection
/// pass.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Test support for everything that mutates process-global telemetry
/// state (the enabled flag, the global registry's values).
pub mod testing {
    use std::sync::{Mutex, MutexGuard};

    static SERIAL: Mutex<()> = Mutex::new(());

    /// Serialises tests that enable/reset global telemetry: hold the
    /// guard for the whole test so concurrent test threads in the same
    /// binary cannot interleave recordings into shared counters.
    pub fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Bumps a named counter on the global registry by 1 (or by `n`).
///
/// `$name` must be a string literal; the resolved handle is cached per
/// call site. No-op (one flag check) when telemetry is disabled.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::Registry::global().counter($name))
                .add($n);
        }
    };
}

/// Sets a named gauge on the global registry to `v`.
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::Registry::global().gauge($name))
                .set($v);
        }
    };
}

/// Raises a named gauge on the global registry to at least `v` (a
/// high-water mark).
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::Registry::global().gauge($name))
                .raise($v);
        }
    };
}

/// Records `v` into a named histogram on the global registry.
#[macro_export]
macro_rules! observe {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::Registry::global().histogram($name))
                .record($v);
        }
    };
}

/// Opens a scoped span: returns an `Option<SpanGuard>` whose drop records
/// the elapsed nanoseconds into the global histogram `<name>.ns`.
///
/// ```
/// # use seldel_telemetry as telemetry;
/// # use telemetry::span;
/// {
///     let _span = span!("chain.seal");
///     // ... timed work ...
/// } // duration recorded into "chain.seal.ns" here (when enabled)
/// ```
///
/// Disabled telemetry returns `None` without reading the clock.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            Some($crate::SpanGuard::enter(::std::sync::Arc::clone(
                SITE.get_or_init(|| $crate::Registry::global().histogram(concat!($name, ".ns"))),
            )))
        } else {
            None
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_are_inert_when_disabled() {
        let _serial = testing::serial();
        set_enabled(false);
        Registry::global().reset();
        count!("test.inert.counter");
        observe!("test.inert.hist", 42);
        gauge_set!("test.inert.gauge", 7);
        let span = span!("test.inert.span");
        assert!(span.is_none());
        drop(span);
        let snap = Registry::global().snapshot();
        assert_eq!(snap.counter("test.inert.counter"), None);
        assert_eq!(snap.gauge("test.inert.gauge"), None);
        assert!(snap.histogram("test.inert.hist").is_none());
    }

    #[test]
    fn macros_record_when_enabled() {
        let _serial = testing::serial();
        set_enabled(true);
        Registry::global().reset();
        count!("test.live.counter");
        count!("test.live.counter", 4);
        gauge_set!("test.live.gauge", 7);
        gauge_max!("test.live.gauge", 3); // below: must not lower it
        gauge_max!("test.live.gauge", 11);
        observe!("test.live.hist", 1000);
        {
            let _span = span!("test.live.span");
        }
        let snap = Registry::global().snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.live.counter"), Some(5));
        assert_eq!(snap.gauge("test.live.gauge"), Some(11));
        assert_eq!(snap.histogram("test.live.hist").map(|h| h.count), Some(1));
        let span_hist = snap.histogram("test.live.span.ns").expect("span recorded");
        assert_eq!(span_hist.count, 1);
    }
}

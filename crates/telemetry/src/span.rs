//! Scoped spans: a guard that times its own lifetime and records the
//! elapsed nanoseconds into a [`Histogram`] on drop.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// An open span. Created by [`enter`](SpanGuard::enter) (usually via
/// the [`span!`](crate::span) macro); dropping it records the elapsed
/// wall-clock nanoseconds into the histogram it was opened against.
///
/// The guard holds an `Arc` to the histogram, so it stays valid across
/// registry resets and can outlive the scope that resolved the name.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span against `hist`, reading the clock now.
    pub fn enter(hist: Arc<Histogram>) -> SpanGuard {
        SpanGuard {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_elapsed_ns() {
        let hist = Arc::new(Histogram::new());
        {
            let _span = SpanGuard::enter(Arc::clone(&hist));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(hist.count(), 1);
        assert!(
            hist.max() >= 1_000_000,
            "slept ≥1ms, recorded {}",
            hist.max()
        );
    }

    #[test]
    fn nested_spans_record_independently() {
        let outer = Arc::new(Histogram::new());
        let inner = Arc::new(Histogram::new());
        {
            let _o = SpanGuard::enter(Arc::clone(&outer));
            {
                let _i = SpanGuard::enter(Arc::clone(&inner));
            }
        }
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        assert!(outer.sum() >= inner.sum());
    }
}

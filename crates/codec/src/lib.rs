//! Canonical serialisation, record schemas and console rendering.
//!
//! Summary blocks in the selective-deletion design are **derived locally by
//! every anchor node and never propagated** (paper §IV-B) — consistency is
//! checked by comparing hashes. That only works if every node serialises
//! blocks bit-identically, so this crate provides a small canonical binary
//! codec ([`Encoder`], [`Decoder`], [`Codec`]) with fixed little-endian
//! integer layout and length-prefixed containers.
//!
//! The paper additionally specifies that "the structure of a data entry is
//! specified beforehand by a YAML schema" (§V). The [`schema`] module
//! implements a typed record schema with a YAML-subset parser and a
//! validating [`schema::SchemaRegistry`].
//!
//! Finally, [`render`] holds the text-table helpers used to reproduce the
//! console output of the paper's Figs. 6–8.
//!
//! # Example
//!
//! ```
//! use seldel_codec::{Codec, DataRecord, Value};
//!
//! let record = DataRecord::new("login")
//!     .with("user", Value::from("ALPHA"))
//!     .with("terminal", Value::U64(7));
//! let bytes = record.to_canonical_bytes();
//! assert_eq!(DataRecord::from_canonical_bytes(&bytes).unwrap(), record);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enc;
pub mod render;
pub mod schema;
mod value;

pub use enc::{decode_seq, encode_seq, Codec, DecodeError, Decoder, Encoder};
pub use value::{DataRecord, Value, ValueKind};

//! Canonical binary encoder/decoder.
//!
//! The format is deliberately boring: little-endian fixed-width integers,
//! `u32` length prefixes, no padding, no varints. Determinism — byte-for-byte
//! identical output for equal values — is the property the summary-block
//! mechanism depends on.

use std::fmt;

/// Error produced when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the requested number of bytes could be read.
    UnexpectedEof {
        /// Bytes requested by the decoder.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A length prefix exceeded the configured sanity bound.
    LengthOverflow(u64),
    /// A tag byte (enum discriminant, bool, option marker) had an
    /// unexpected value.
    InvalidTag {
        /// Human-readable name of the type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// Input had trailing bytes after a complete top-level value.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            DecodeError::LengthOverflow(len) => write!(f, "length prefix {len} too large"),
            DecodeError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            DecodeError::InvalidUtf8 => f.write_str("invalid UTF-8 in string"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound for any single length prefix (protects against corrupt or
/// hostile inputs allocating unbounded memory).
const MAX_LEN: u64 = 1 << 30;

/// Canonical binary encoder.
///
/// # Example
///
/// ```
/// use seldel_codec::{Encoder, Decoder};
///
/// let mut enc = Encoder::new();
/// enc.put_u64(42);
/// enc.put_str("hello");
/// let bytes = enc.into_bytes();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.take_u64().unwrap(), 42);
/// assert_eq!(dec.take_str().unwrap(), "hello");
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends raw bytes *without* a length prefix (for fixed-size fields
    /// such as hashes, keys and signatures).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends variable-length bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        debug_assert!((bytes.len() as u64) < MAX_LEN);
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a container length (`u32`).
    pub fn put_len(&mut self, len: usize) {
        debug_assert!((len as u64) < MAX_LEN);
        self.put_u32(len as u32);
    }

    /// Finishes encoding and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Canonical binary decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `input`.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, DecodeError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(i64::from_le_bytes(w))
    }

    /// Reads a bool byte, rejecting values other than 0/1 (canonicality).
    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::InvalidTag { what: "bool", tag }),
        }
    }

    /// Reads exactly `N` raw bytes into an array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let b = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Ok(out)
    }

    /// Reads length-prefixed bytes.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.take_u32()? as u64;
        if len > MAX_LEN {
            return Err(DecodeError::LengthOverflow(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, DecodeError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Reads a container length.
    pub fn take_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.take_u32()? as u64;
        if len > MAX_LEN {
            return Err(DecodeError::LengthOverflow(len));
        }
        Ok(len as usize)
    }
}

/// Types with a canonical binary encoding.
///
/// Determinism contract: `encode` must be a pure function of the value, and
/// `decode(encode(x)) == x`. All chain types implement this trait; block
/// hashes are computed over these encodings.
pub trait Codec: Sized {
    /// Appends the canonical encoding of `self` to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes a value from `dec`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: encodes into a fresh buffer.
    fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or when `bytes` contains
    /// more than one value.
    fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let value = Self::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(DecodeError::TrailingBytes(dec.remaining()));
        }
        Ok(value)
    }
}

impl Codec for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_u8()
    }
}

impl Codec for u16 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u16(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_u16()
    }
}

impl Codec for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_u64()
    }
}

impl Codec for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_i64()
    }
}

impl Codec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_bool()
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_str()
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.take_bytes()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            tag => Err(DecodeError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

/// Encodes a slice of codec values with a length prefix.
pub fn encode_seq<T: Codec>(items: &[T], enc: &mut Encoder) {
    enc.put_len(items.len());
    for item in items {
        item.encode(enc);
    }
}

/// Decodes a length-prefixed sequence.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decode_seq<T: Codec>(dec: &mut Decoder<'_>) -> Result<Vec<T>, DecodeError> {
    let len = dec.take_len()?;
    let mut out = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

// Note: no blanket `impl Codec for Vec<T>` — it would conflict with the
// dedicated `Vec<u8>` impl (bytes are length-prefixed blobs, not element
// sequences). Sequence fields use `encode_seq`/`decode_seq` explicitly.

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_canonical_bytes();
        let decoded = T::from_canonical_bytes(&bytes).expect("decode");
        assert_eq!(decoded, value);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xabcdu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(Some(17u64));
        round_trip(Option::<u64>::None);
    }

    #[test]
    fn seq_round_trip() {
        let items = vec![String::from("a"), String::from("bb")];
        let mut enc = Encoder::new();
        encode_seq(&items, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let decoded: Vec<String> = decode_seq(&mut dec).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(decoded, items);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = String::from("xy");
        assert_eq!(a.to_canonical_bytes(), a.to_canonical_bytes());
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = 42u64.to_canonical_bytes();
        let err = u64::from_canonical_bytes(&bytes[..4]).unwrap_err();
        assert!(matches!(err, DecodeError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 42u32.to_canonical_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_canonical_bytes(&bytes),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        assert!(matches!(
            bool::from_canonical_bytes(&[2]),
            Err(DecodeError::InvalidTag { what: "bool", .. })
        ));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        assert!(matches!(
            Option::<u8>::from_canonical_bytes(&[9, 1]),
            Err(DecodeError::InvalidTag { what: "Option", .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        assert_eq!(
            String::from_canonical_bytes(&bytes),
            Err(DecodeError::InvalidUtf8)
        );
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Length prefix claims 2^31 bytes.
        let bytes = (1u32 << 31).to_canonical_bytes();
        assert!(matches!(
            Vec::<u8>::from_canonical_bytes(&bytes),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(DecodeError::InvalidUtf8.to_string().contains("UTF-8"));
    }
}

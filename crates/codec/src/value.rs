//! Typed field values and data records (`D` in the paper's entry layout).

use std::fmt;

use crate::enc::{Codec, DecodeError, Decoder, Encoder};

/// A typed field value inside a [`DataRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// UTF-8 text.
    Str(String),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Signed 64-bit integer.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

/// The kind (type) of a [`Value`], used by schema validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// UTF-8 text.
    Str,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// Boolean flag.
    Bool,
    /// Opaque bytes.
    Bytes,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueKind::Str => "str",
            ValueKind::U64 => "u64",
            ValueKind::I64 => "i64",
            ValueKind::Bool => "bool",
            ValueKind::Bytes => "bytes",
        };
        f.write_str(name)
    }
}

impl Value {
    /// The kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Str(_) => ValueKind::Str,
            Value::U64(_) => ValueKind::U64,
            Value::I64(_) => ValueKind::I64,
            Value::Bool(_) => ValueKind::Bool,
            Value::Bytes(_) => ValueKind::Bytes,
        }
    }

    /// Borrows the string content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content, if this is a [`Value::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer content, if this is a [`Value::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean content, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrows the byte content, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Bytes(b) => write!(f, "0x{}", crate_hex(b)),
        }
    }
}

fn crate_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Codec for Value {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Value::Str(s) => {
                enc.put_u8(0);
                enc.put_str(s);
            }
            Value::U64(v) => {
                enc.put_u8(1);
                enc.put_u64(*v);
            }
            Value::I64(v) => {
                enc.put_u8(2);
                enc.put_i64(*v);
            }
            Value::Bool(v) => {
                enc.put_u8(3);
                enc.put_bool(*v);
            }
            Value::Bytes(b) => {
                enc.put_u8(4);
                enc.put_bytes(b);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Value::Str(dec.take_str()?)),
            1 => Ok(Value::U64(dec.take_u64()?)),
            2 => Ok(Value::I64(dec.take_i64()?)),
            3 => Ok(Value::Bool(dec.take_bool()?)),
            4 => Ok(Value::Bytes(dec.take_bytes()?)),
            tag => Err(DecodeError::InvalidTag { what: "Value", tag }),
        }
    }
}

/// An ordered, schema-named collection of fields — the `D` (data) part of a
/// blockchain entry.
///
/// Field order is preserved and significant for the canonical encoding;
/// builders should insert fields in schema order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DataRecord {
    schema: String,
    fields: Vec<(String, Value)>,
}

impl DataRecord {
    /// Creates an empty record bound to schema `schema`.
    pub fn new(schema: impl Into<String>) -> DataRecord {
        DataRecord {
            schema: schema.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field insertion.
    ///
    /// # Panics
    ///
    /// Panics if the field name is already present (records are flat maps;
    /// duplicates would break canonical encoding).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> DataRecord {
        self.insert(name, value);
        self
    }

    /// Inserts a field.
    ///
    /// # Panics
    ///
    /// Panics if the field name is already present.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "duplicate field {name:?} in record"
        );
        self.fields.push((name, value.into()));
    }

    /// The schema name this record claims to conform to.
    pub fn schema(&self) -> &str {
        &self.schema
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Approximate wire size in bytes (used by the growth experiments).
    pub fn byte_size(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl fmt::Display for DataRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.schema)?;
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        f.write_str("}")
    }
}

impl Codec for DataRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.schema);
        enc.put_len(self.fields.len());
        for (name, value) in &self.fields {
            enc.put_str(name);
            value.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let schema = dec.take_str()?;
        let len = dec.take_len()?;
        let mut fields = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let name = dec.take_str()?;
            let value = Value::decode(dec)?;
            fields.push((name, value));
        }
        Ok(DataRecord { schema, fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataRecord {
        DataRecord::new("login")
            .with("user", "ALPHA")
            .with("terminal", 7u64)
            .with("success", true)
            .with("session", Value::Bytes(vec![1, 2, 3]))
            .with("offset", -5i64)
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let decoded = DataRecord::from_canonical_bytes(&r.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn get_and_iter() {
        let r = sample();
        assert_eq!(r.get("user").and_then(Value::as_str), Some("ALPHA"));
        assert_eq!(r.get("terminal").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 5);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["user", "terminal", "success", "session", "offset"]);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_panics() {
        let _ = sample().with("user", "BRAVO");
    }

    #[test]
    fn display_is_compact() {
        let r = DataRecord::new("x").with("a", 1u64);
        assert_eq!(r.to_string(), "x{a=1}");
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Value::from("s").kind(), ValueKind::Str);
        assert_eq!(Value::U64(1).kind(), ValueKind::U64);
        assert_eq!(Value::I64(-1).kind(), ValueKind::I64);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::Bytes(vec![]).kind(), ValueKind::Bytes);
        assert_eq!(ValueKind::Bytes.to_string(), "bytes");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from("s").as_u64(), None);
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::I64(-3).as_i64(), Some(-3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bytes(vec![7]).as_bytes(), Some(&[7u8][..]));
    }

    #[test]
    fn deterministic_encoding() {
        assert_eq!(sample().to_canonical_bytes(), sample().to_canonical_bytes());
    }

    #[test]
    fn field_order_affects_encoding() {
        let a = DataRecord::new("s").with("x", 1u64).with("y", 2u64);
        let b = DataRecord::new("s").with("y", 2u64).with("x", 1u64);
        assert_ne!(a.to_canonical_bytes(), b.to_canonical_bytes());
    }

    #[test]
    fn empty_record_round_trip() {
        let r = DataRecord::new("empty");
        assert!(r.is_empty());
        let decoded = DataRecord::from_canonical_bytes(&r.to_canonical_bytes()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn byte_size_positive() {
        assert!(sample().byte_size() > 0);
    }
}

//! Record schemas and a YAML-subset schema language.
//!
//! The paper's prototype specifies entry structure "beforehand by a YAML
//! schema" (§V). This module provides the equivalent: a [`RecordSchema`]
//! declares the typed fields a [`DataRecord`] must carry,
//! a [`SchemaRegistry`] validates incoming records, and
//! [`RecordSchema::parse_yaml`] reads the subset of YAML needed for flat
//! record declarations:
//!
//! ```yaml
//! record: login
//! fields:
//!   user: str
//!   terminal: u64
//!   success: bool
//!   note: str?        # trailing '?' marks the field optional
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::value::{DataRecord, ValueKind};

/// A single field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    name: String,
    kind: ValueKind,
    required: bool,
}

impl FieldDef {
    /// Declares a required field.
    pub fn required(name: impl Into<String>, kind: ValueKind) -> FieldDef {
        FieldDef {
            name: name.into(),
            kind,
            required: true,
        }
    }

    /// Declares an optional field.
    pub fn optional(name: impl Into<String>, kind: ValueKind) -> FieldDef {
        FieldDef {
            name: name.into(),
            kind,
            required: false,
        }
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected value kind.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// Whether the field must be present.
    pub fn is_required(&self) -> bool {
        self.required
    }
}

/// Errors from schema parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The YAML-subset text was malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A record referenced a schema the registry does not know.
    UnknownSchema(String),
    /// A required field was absent.
    MissingField {
        /// Schema name.
        schema: String,
        /// Field name.
        field: String,
    },
    /// A field was present with the wrong type.
    TypeMismatch {
        /// Schema name.
        schema: String,
        /// Field name.
        field: String,
        /// Declared kind.
        expected: ValueKind,
        /// Actual kind found in the record.
        found: ValueKind,
    },
    /// The record carried a field the schema does not declare.
    UnknownField {
        /// Schema name.
        schema: String,
        /// Field name.
        field: String,
    },
    /// A schema with this name is already registered.
    DuplicateSchema(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { line, reason } => {
                write!(f, "schema parse error at line {line}: {reason}")
            }
            SchemaError::UnknownSchema(name) => write!(f, "unknown schema {name:?}"),
            SchemaError::MissingField { schema, field } => {
                write!(f, "schema {schema:?}: missing required field {field:?}")
            }
            SchemaError::TypeMismatch {
                schema,
                field,
                expected,
                found,
            } => write!(
                f,
                "schema {schema:?}: field {field:?} expected {expected}, found {found}"
            ),
            SchemaError::UnknownField { schema, field } => {
                write!(f, "schema {schema:?}: unknown field {field:?}")
            }
            SchemaError::DuplicateSchema(name) => {
                write!(f, "schema {name:?} already registered")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A named, flat record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSchema {
    name: String,
    fields: Vec<FieldDef>,
}

impl RecordSchema {
    /// Creates a schema from parts.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> RecordSchema {
        RecordSchema {
            name: name.into(),
            fields,
        }
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared fields, in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Parses the YAML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Parse`] with a line number for malformed input.
    pub fn parse_yaml(text: &str) -> Result<RecordSchema, SchemaError> {
        let mut name: Option<String> = None;
        let mut fields: Vec<FieldDef> = Vec::new();
        let mut in_fields = false;

        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            // Strip comments and trailing whitespace.
            let line = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            };
            if line.trim().is_empty() {
                continue;
            }
            let indented = line.starts_with(' ') || line.starts_with('\t');
            let trimmed = line.trim();

            if !indented {
                in_fields = false;
                if let Some(rest) = trimmed.strip_prefix("record:") {
                    let value = rest.trim();
                    if value.is_empty() {
                        return Err(SchemaError::Parse {
                            line: line_no,
                            reason: "record name missing".to_string(),
                        });
                    }
                    if name.is_some() {
                        return Err(SchemaError::Parse {
                            line: line_no,
                            reason: "duplicate record declaration".to_string(),
                        });
                    }
                    name = Some(value.to_string());
                } else if trimmed == "fields:" {
                    in_fields = true;
                } else {
                    return Err(SchemaError::Parse {
                        line: line_no,
                        reason: format!("unexpected top-level line {trimmed:?}"),
                    });
                }
                continue;
            }

            if !in_fields {
                return Err(SchemaError::Parse {
                    line: line_no,
                    reason: "indented line outside a fields: section".to_string(),
                });
            }
            let Some((field_name, type_text)) = trimmed.split_once(':') else {
                return Err(SchemaError::Parse {
                    line: line_no,
                    reason: format!("expected `name: type`, got {trimmed:?}"),
                });
            };
            let field_name = field_name.trim();
            let mut type_text = type_text.trim();
            if field_name.is_empty() || type_text.is_empty() {
                return Err(SchemaError::Parse {
                    line: line_no,
                    reason: "empty field name or type".to_string(),
                });
            }
            let required = if let Some(stripped) = type_text.strip_suffix('?') {
                type_text = stripped.trim_end();
                false
            } else {
                true
            };
            let kind = match type_text {
                "str" => ValueKind::Str,
                "u64" => ValueKind::U64,
                "i64" => ValueKind::I64,
                "bool" => ValueKind::Bool,
                "bytes" => ValueKind::Bytes,
                other => {
                    return Err(SchemaError::Parse {
                        line: line_no,
                        reason: format!("unknown type {other:?}"),
                    })
                }
            };
            if fields.iter().any(|f| f.name == field_name) {
                return Err(SchemaError::Parse {
                    line: line_no,
                    reason: format!("duplicate field {field_name:?}"),
                });
            }
            fields.push(FieldDef {
                name: field_name.to_string(),
                kind,
                required,
            });
        }

        let name = name.ok_or(SchemaError::Parse {
            line: 0,
            reason: "missing record: declaration".to_string(),
        })?;
        Ok(RecordSchema { name, fields })
    }

    /// Validates a record against this schema.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: missing required field, type
    /// mismatch or undeclared field.
    pub fn validate(&self, record: &DataRecord) -> Result<(), SchemaError> {
        for def in &self.fields {
            match record.get(&def.name) {
                None if def.required => {
                    return Err(SchemaError::MissingField {
                        schema: self.name.clone(),
                        field: def.name.clone(),
                    })
                }
                None => {}
                Some(value) if value.kind() != def.kind => {
                    return Err(SchemaError::TypeMismatch {
                        schema: self.name.clone(),
                        field: def.name.clone(),
                        expected: def.kind,
                        found: value.kind(),
                    })
                }
                Some(_) => {}
            }
        }
        for (field_name, _) in record.iter() {
            if !self.fields.iter().any(|f| f.name == field_name) {
                return Err(SchemaError::UnknownField {
                    schema: self.name.clone(),
                    field: field_name.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// A set of named schemas validating incoming entries.
#[derive(Debug, Clone, Default)]
pub struct SchemaRegistry {
    schemas: BTreeMap<String, RecordSchema>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> SchemaRegistry {
        SchemaRegistry::default()
    }

    /// Registers a schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::DuplicateSchema`] if the name is taken.
    pub fn register(&mut self, schema: RecordSchema) -> Result<(), SchemaError> {
        if self.schemas.contains_key(schema.name()) {
            return Err(SchemaError::DuplicateSchema(schema.name().to_string()));
        }
        self.schemas.insert(schema.name().to_string(), schema);
        Ok(())
    }

    /// Parses and registers a YAML-subset schema in one step.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and duplicate-name errors.
    pub fn register_yaml(&mut self, text: &str) -> Result<(), SchemaError> {
        self.register(RecordSchema::parse_yaml(text)?)
    }

    /// Looks up a schema by name.
    pub fn get(&self, name: &str) -> Option<&RecordSchema> {
        self.schemas.get(name)
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Validates a record against its claimed schema.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::UnknownSchema`] for unregistered schema names
    /// and propagates field-level violations.
    pub fn validate(&self, record: &DataRecord) -> Result<(), SchemaError> {
        let schema = self
            .schemas
            .get(record.schema())
            .ok_or_else(|| SchemaError::UnknownSchema(record.schema().to_string()))?;
        schema.validate(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataRecord, Value};

    const LOGIN_YAML: &str = "\
# login audit schema (paper §V)
record: login
fields:
  user: str
  terminal: u64
  success: bool
  note: str?
";

    fn login_schema() -> RecordSchema {
        RecordSchema::parse_yaml(LOGIN_YAML).unwrap()
    }

    fn valid_record() -> DataRecord {
        DataRecord::new("login")
            .with("user", "ALPHA")
            .with("terminal", 7u64)
            .with("success", true)
    }

    #[test]
    fn parse_yaml_happy_path() {
        let schema = login_schema();
        assert_eq!(schema.name(), "login");
        assert_eq!(schema.fields().len(), 4);
        assert!(schema.fields()[0].is_required());
        assert_eq!(schema.fields()[3].name(), "note");
        assert!(!schema.fields()[3].is_required());
    }

    #[test]
    fn validate_accepts_valid_record() {
        login_schema().validate(&valid_record()).unwrap();
    }

    #[test]
    fn validate_accepts_optional_field_present() {
        let record = valid_record().with("note", "first login");
        login_schema().validate(&record).unwrap();
    }

    #[test]
    fn missing_required_field_rejected() {
        let record = DataRecord::new("login").with("user", "ALPHA");
        let err = login_schema().validate(&record).unwrap_err();
        assert!(matches!(err, SchemaError::MissingField { ref field, .. } if field == "terminal"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let record = DataRecord::new("login")
            .with("user", "ALPHA")
            .with("terminal", "seven")
            .with("success", true);
        let err = login_schema().validate(&record).unwrap_err();
        assert!(matches!(
            err,
            SchemaError::TypeMismatch {
                expected: ValueKind::U64,
                found: ValueKind::Str,
                ..
            }
        ));
    }

    #[test]
    fn unknown_field_rejected() {
        let record = valid_record().with("extra", 1u64);
        let err = login_schema().validate(&record).unwrap_err();
        assert!(matches!(err, SchemaError::UnknownField { ref field, .. } if field == "extra"));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        let err = RecordSchema::parse_yaml("record: x\nfields:\n  a: float\n").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { line: 3, .. }));
    }

    #[test]
    fn parse_rejects_missing_record_name() {
        let err = RecordSchema::parse_yaml("fields:\n  a: str\n").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_duplicate_field() {
        let err = RecordSchema::parse_yaml("record: x\nfields:\n  a: str\n  a: u64\n").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { line: 4, .. }));
    }

    #[test]
    fn parse_rejects_duplicate_record_line() {
        let err = RecordSchema::parse_yaml("record: x\nrecord: y\n").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_indent_outside_fields() {
        let err = RecordSchema::parse_yaml("record: x\n  a: str\n").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { line: 2, .. }));
    }

    #[test]
    fn registry_validates_by_claimed_schema() {
        let mut reg = SchemaRegistry::new();
        reg.register_yaml(LOGIN_YAML).unwrap();
        assert_eq!(reg.len(), 1);
        reg.validate(&valid_record()).unwrap();

        let unknown = DataRecord::new("payment").with("amount", 1u64);
        assert!(matches!(
            reg.validate(&unknown),
            Err(SchemaError::UnknownSchema(_))
        ));
    }

    #[test]
    fn registry_rejects_duplicates() {
        let mut reg = SchemaRegistry::new();
        reg.register_yaml(LOGIN_YAML).unwrap();
        assert!(matches!(
            reg.register_yaml(LOGIN_YAML),
            Err(SchemaError::DuplicateSchema(_))
        ));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let record = DataRecord::new("login").with("user", "A");
        let msg = login_schema().validate(&record).unwrap_err().to_string();
        assert!(msg.contains("terminal"));
        let msg = Value::from("x");
        let _ = msg; // silence unused in case of refactors
    }

    #[test]
    fn schema_with_all_types_parses() {
        let yaml = "record: all\nfields:\n  a: str\n  b: u64\n  c: i64\n  d: bool\n  e: bytes?\n";
        let schema = RecordSchema::parse_yaml(yaml).unwrap();
        let kinds: Vec<ValueKind> = schema.fields().iter().map(|f| f.kind()).collect();
        assert_eq!(
            kinds,
            [
                ValueKind::Str,
                ValueKind::U64,
                ValueKind::I64,
                ValueKind::Bool,
                ValueKind::Bytes
            ]
        );
    }
}

//! Console rendering helpers.
//!
//! The paper's evaluation (Figs. 6–8) presents the blockchain as a line-per-
//! block console listing. This module provides the generic pieces — aligned
//! text tables and fixed-width helpers — used by the chain renderer and the
//! experiment binaries that print the reproduced figures and series.

use std::fmt::Write as _;

/// Left-pads or truncates `s` to exactly `width` characters.
pub fn pad_left(s: &str, width: usize) -> String {
    if s.len() >= width {
        s[..width].to_string()
    } else {
        format!("{s:>width$}")
    }
}

/// Right-pads or truncates `s` to exactly `width` characters.
pub fn pad_right(s: &str, width: usize) -> String {
    if s.len() >= width {
        s[..width].to_string()
    } else {
        format!("{s:<width$}")
    }
}

/// An aligned plain-text table.
///
/// # Example
///
/// ```
/// use seldel_codec::render::TextTable;
///
/// let mut t = TextTable::new(["l_max", "live blocks", "bytes"]);
/// t.row(["32", "33", "18204"]);
/// t.row(["64", "65", "36020"]);
/// let rendered = t.render();
/// assert!(rendered.contains("l_max"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row<I, S>(&mut self, cells: I) -> &mut TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.truncate(self.headers.len());
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline, columns separated by two
    /// spaces, numbers right-aligned heuristically.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        // A column is right-aligned when every non-empty cell parses as a
        // number (integers, floats, percentages, ratios like "3.2x").
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                self.rows.iter().all(|row| {
                    let cell = row[i].trim().trim_end_matches(['%', 'x']);
                    cell.is_empty() || cell.parse::<f64>().is_ok()
                })
            })
            .collect();

        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{}", pad_right(h, widths[i]));
        }
        out.push('\n');
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let padded = if numeric[i] {
                    pad_left(cell, widths[i])
                } else {
                    pad_right(cell, widths[i])
                };
                out.push_str(&padded);
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count with binary units (`18.2 KiB`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats a ratio as a multiplier string (`3.2x`).
pub fn ratio(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        return "inf".to_string();
    }
    format!("{:.2}x", numerator / denominator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_helpers() {
        assert_eq!(pad_left("ab", 4), "  ab");
        assert_eq!(pad_right("ab", 4), "ab  ");
        assert_eq!(pad_left("abcdef", 4), "abcd");
        assert_eq!(pad_right("abcdef", 4), "abcd");
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["b", "100"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{rendered}");
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("  1".trim_end_matches(' ')) || lines[2].ends_with("    1"));
    }

    #[test]
    fn table_pads_missing_cells() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MiB");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(6.0, 2.0), "3.00x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn numeric_detection_handles_suffixes() {
        let mut t = TextTable::new(["q", "success"]);
        t.row(["0.30", "12.5%"]);
        t.row(["0.45", "48.1%"]);
        let rendered = t.render();
        assert!(rendered.contains("12.5%"));
    }
}

//! Quorum voting (§IV-A, §IV-C).
//!
//! "The agreement on the same blockchain is usually done by some core
//! nodes, called anchor nodes. These node\[s\] manage the full copy of the
//! blockchain and build the quorum. … By a majority vote, the quorum
//! determines the new first Block and the time of the changeover."
//!
//! Marker shifts, deletion approvals and chain adoption are all decided by
//! signed ballots tallied against a configurable threshold.

use std::collections::BTreeMap;
use std::fmt;

use seldel_chain::{BlockNumber, EntryId, Timestamp};
use seldel_codec::{Codec, Encoder};
use seldel_crypto::{Digest32, Signature, SigningKey, VerifyingKey};

/// The quorum: member keys plus the acceptance threshold.
#[derive(Debug, Clone)]
pub struct QuorumConfig {
    members: Vec<VerifyingKey>,
    threshold: usize,
}

impl QuorumConfig {
    /// Creates a quorum with an explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is zero or exceeds the member count.
    pub fn new(members: Vec<VerifyingKey>, threshold: usize) -> QuorumConfig {
        assert!(
            threshold >= 1 && threshold <= members.len(),
            "threshold {threshold} out of range for {} members",
            members.len()
        );
        QuorumConfig { members, threshold }
    }

    /// Creates a simple-majority quorum (⌊n/2⌋ + 1).
    pub fn majority(members: Vec<VerifyingKey>) -> QuorumConfig {
        let threshold = members.len() / 2 + 1;
        QuorumConfig::new(members, threshold)
    }

    /// The member keys.
    pub fn members(&self) -> &[VerifyingKey] {
        &self.members
    }

    /// Votes required to accept.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Whether `key` is a quorum member.
    pub fn is_member(&self, key: &VerifyingKey) -> bool {
        self.members.contains(key)
    }
}

/// What the quorum votes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteSubject {
    /// Approve the deletion of a data set (§IV-D1: "According to the
    /// consensus of the anchor nodes, a deletion request is approved").
    ApproveDeletion {
        /// The target data set.
        target: EntryId,
    },
    /// Shift the genesis marker (§IV-C: "the quorum determines the new
    /// first Block and the time of the changeover").
    ShiftMarker {
        /// The proposed new first block.
        new_marker: BlockNumber,
        /// The changeover point: the summary block absorbing the cut.
        at_block: BlockNumber,
    },
    /// Adopt a chain status quo (used by sync / fork resolution).
    AdoptChain {
        /// Tip number of the proposed chain.
        tip: BlockNumber,
        /// Tip hash of the proposed chain.
        tip_hash: Digest32,
    },
}

impl VoteSubject {
    /// Canonical digest input for ballot signatures.
    pub fn message(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"seldel/ballot/v1");
        match self {
            VoteSubject::ApproveDeletion { target } => {
                enc.put_u8(0);
                target.encode(&mut enc);
            }
            VoteSubject::ShiftMarker {
                new_marker,
                at_block,
            } => {
                enc.put_u8(1);
                new_marker.encode(&mut enc);
                at_block.encode(&mut enc);
            }
            VoteSubject::AdoptChain { tip, tip_hash } => {
                enc.put_u8(2);
                tip.encode(&mut enc);
                enc.put_raw(tip_hash.as_bytes());
            }
        }
        enc.into_bytes()
    }
}

impl fmt::Display for VoteSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteSubject::ApproveDeletion { target } => write!(f, "approve-deletion {target}"),
            VoteSubject::ShiftMarker {
                new_marker,
                at_block,
            } => write!(f, "shift-marker to {new_marker} at {at_block}"),
            VoteSubject::AdoptChain { tip, tip_hash } => {
                write!(f, "adopt-chain tip {tip} hash {}", tip_hash.short())
            }
        }
    }
}

/// A signed vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ballot {
    /// What is being voted on.
    pub subject: VoteSubject,
    /// The voting member.
    pub voter: VerifyingKey,
    /// Accept or reject.
    pub accept: bool,
    /// Signature over subject ‖ accept.
    pub signature: Signature,
    /// Vote time (virtual).
    pub cast_at: Timestamp,
}

impl Ballot {
    /// Signs a ballot.
    pub fn sign(
        key: &SigningKey,
        subject: VoteSubject,
        accept: bool,
        cast_at: Timestamp,
    ) -> Ballot {
        let message = Ballot::signing_message(&subject, accept);
        Ballot {
            subject,
            voter: key.verifying_key(),
            accept,
            signature: key.sign(&message),
            cast_at,
        }
    }

    fn signing_message(subject: &VoteSubject, accept: bool) -> Vec<u8> {
        let mut message = subject.message();
        message.push(u8::from(accept));
        message
    }

    /// Verifies the ballot signature.
    pub fn verify(&self) -> bool {
        let message = Ballot::signing_message(&self.subject, self.accept);
        self.voter.verify(&message, &self.signature).is_ok()
    }
}

/// Tally outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TallyState {
    /// Not enough votes either way yet.
    Pending,
    /// Threshold of accepts reached.
    Accepted,
    /// Rejection is certain (accepts can no longer reach the threshold).
    Rejected,
}

/// Errors when adding ballots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteError {
    /// The ballot's subject differs from the tally's subject.
    SubjectMismatch,
    /// The voter is not a quorum member.
    NotAMember(VerifyingKey),
    /// The ballot signature is invalid.
    BadSignature,
    /// The member already voted (first vote wins; equivocation ignored).
    AlreadyVoted(VerifyingKey),
}

impl fmt::Display for VoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteError::SubjectMismatch => f.write_str("ballot subject mismatch"),
            VoteError::NotAMember(_) => f.write_str("voter is not a quorum member"),
            VoteError::BadSignature => f.write_str("invalid ballot signature"),
            VoteError::AlreadyVoted(_) => f.write_str("member already voted"),
        }
    }
}

impl std::error::Error for VoteError {}

/// Collects ballots on one subject until decided.
#[derive(Debug, Clone)]
pub struct VoteTally {
    config: QuorumConfig,
    subject: VoteSubject,
    votes: BTreeMap<[u8; 32], bool>,
}

impl VoteTally {
    /// Starts a tally for `subject`.
    pub fn new(config: QuorumConfig, subject: VoteSubject) -> VoteTally {
        VoteTally {
            config,
            subject,
            votes: BTreeMap::new(),
        }
    }

    /// The subject under vote.
    pub fn subject(&self) -> &VoteSubject {
        &self.subject
    }

    /// Adds a ballot, returning the updated state.
    ///
    /// # Errors
    ///
    /// See [`VoteError`].
    pub fn add(&mut self, ballot: &Ballot) -> Result<TallyState, VoteError> {
        if ballot.subject != self.subject {
            return Err(VoteError::SubjectMismatch);
        }
        if !self.config.is_member(&ballot.voter) {
            return Err(VoteError::NotAMember(ballot.voter));
        }
        if !ballot.verify() {
            return Err(VoteError::BadSignature);
        }
        let key = ballot.voter.to_bytes();
        if self.votes.contains_key(&key) {
            return Err(VoteError::AlreadyVoted(ballot.voter));
        }
        self.votes.insert(key, ballot.accept);
        Ok(self.state())
    }

    /// Current accept count.
    pub fn accepts(&self) -> usize {
        self.votes.values().filter(|v| **v).count()
    }

    /// Current reject count.
    pub fn rejects(&self) -> usize {
        self.votes.len() - self.accepts()
    }

    /// Current tally state.
    pub fn state(&self) -> TallyState {
        if self.accepts() >= self.config.threshold() {
            return TallyState::Accepted;
        }
        let outstanding = self.config.members().len() - self.votes.len();
        if self.accepts() + outstanding < self.config.threshold() {
            return TallyState::Rejected;
        }
        TallyState::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::EntryNumber;

    fn keys(n: u8) -> Vec<SigningKey> {
        (0..n).map(|i| SigningKey::from_seed([i + 1; 32])).collect()
    }

    fn subject() -> VoteSubject {
        VoteSubject::ApproveDeletion {
            target: EntryId::new(BlockNumber(3), EntryNumber(1)),
        }
    }

    #[test]
    fn majority_threshold() {
        let members = keys(5);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        assert_eq!(config.threshold(), 3);
    }

    #[test]
    fn tally_accepts_at_threshold() {
        let members = keys(3);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        assert_eq!(
            tally
                .add(&Ballot::sign(&members[0], subject(), true, Timestamp(1)))
                .unwrap(),
            TallyState::Pending
        );
        assert_eq!(
            tally
                .add(&Ballot::sign(&members[1], subject(), true, Timestamp(2)))
                .unwrap(),
            TallyState::Accepted
        );
        assert_eq!(tally.accepts(), 2);
    }

    #[test]
    fn tally_rejects_when_unreachable() {
        let members = keys(3);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        tally
            .add(&Ballot::sign(&members[0], subject(), false, Timestamp(1)))
            .unwrap();
        let state = tally
            .add(&Ballot::sign(&members[1], subject(), false, Timestamp(2)))
            .unwrap();
        assert_eq!(state, TallyState::Rejected);
        assert_eq!(tally.rejects(), 2);
    }

    #[test]
    fn non_member_rejected() {
        let members = keys(3);
        let outsider = SigningKey::from_seed([99; 32]);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        assert!(matches!(
            tally.add(&Ballot::sign(&outsider, subject(), true, Timestamp(1))),
            Err(VoteError::NotAMember(_))
        ));
    }

    #[test]
    fn double_vote_rejected() {
        let members = keys(3);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        tally
            .add(&Ballot::sign(&members[0], subject(), true, Timestamp(1)))
            .unwrap();
        assert!(matches!(
            tally.add(&Ballot::sign(&members[0], subject(), false, Timestamp(2))),
            Err(VoteError::AlreadyVoted(_))
        ));
    }

    #[test]
    fn forged_ballot_rejected() {
        let members = keys(3);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        let mut ballot = Ballot::sign(&members[0], subject(), true, Timestamp(1));
        ballot.accept = false; // signature no longer matches
        assert_eq!(tally.add(&ballot), Err(VoteError::BadSignature));
    }

    #[test]
    fn subject_mismatch_rejected() {
        let members = keys(3);
        let config = QuorumConfig::majority(members.iter().map(|k| k.verifying_key()).collect());
        let mut tally = VoteTally::new(config, subject());
        let other = VoteSubject::ShiftMarker {
            new_marker: BlockNumber(6),
            at_block: BlockNumber(8),
        };
        assert_eq!(
            tally.add(&Ballot::sign(&members[0], other, true, Timestamp(1))),
            Err(VoteError::SubjectMismatch)
        );
    }

    #[test]
    fn subjects_have_distinct_messages() {
        let a = VoteSubject::ApproveDeletion {
            target: EntryId::new(BlockNumber(1), EntryNumber(0)),
        };
        let b = VoteSubject::ShiftMarker {
            new_marker: BlockNumber(1),
            at_block: BlockNumber(0),
        };
        let c = VoteSubject::AdoptChain {
            tip: BlockNumber(1),
            tip_hash: seldel_crypto::sha256(b"x"),
        };
        assert_ne!(a.message(), b.message());
        assert_ne!(b.message(), c.message());
        assert!(a.to_string().contains("1:0"));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        QuorumConfig::new(vec![SigningKey::from_seed([1; 32]).verifying_key()], 0);
    }
}

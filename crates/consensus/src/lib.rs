//! Pluggable consensus for the selective-deletion blockchain.
//!
//! The paper stresses that its concept "is independent of the concrete
//! characteristics of quorum selection and consensus algorithm" (§V-B5).
//! This crate supplies the interchangeable pieces:
//!
//! * [`engine`] — a [`ConsensusEngine`] trait with three implementations
//!   (null/deterministic, proof-of-work, proof-of-authority). Engines never
//!   touch summary blocks, which stay deterministic by construction.
//! * [`quorum`] — signed ballots and threshold tallies for the decisions
//!   the paper assigns to the anchor-node quorum: deletion approval, marker
//!   shifts and chain adoption.
//! * [`election`] — deterministic anchor-node election strategies
//!   (participation, stake, seeded random committee, fixed set).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod engine;
pub mod quorum;

pub use election::{
    ByParticipation, ByStake, Candidate, ElectionStrategy, FixedSet, RandomCommittee,
};
pub use engine::{
    leading_zero_bits, ConsensusEngine, NullEngine, ProofOfAuthority, ProofOfWork, SealError,
};
pub use quorum::{Ballot, QuorumConfig, TallyState, VoteError, VoteSubject, VoteTally};

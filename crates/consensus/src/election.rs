//! Anchor-node (quorum) election strategies.
//!
//! "For the election of the group of these trusted nodes, several community
//! based approaches can be applied. This depends on the type of the
//! blockchain: public, private, consortium, hybrid. For example, the
//! trusted community could consist of a non-profit organisation or
//! participated users, who have previously done transaction in the
//! blockchain." (§IV-A)
//!
//! All strategies are deterministic (ties broken by key order; randomness
//! is seeded) so that every node computes the same quorum.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use seldel_crypto::VerifyingKey;

/// A quorum candidate with its observable credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate key.
    pub key: VerifyingKey,
    /// Number of transactions previously submitted ("participated users,
    /// who have previously done transaction in the blockchain").
    pub participation: u64,
    /// Stake weight (for stake-based deployments).
    pub stake: u64,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(key: VerifyingKey, participation: u64, stake: u64) -> Candidate {
        Candidate {
            key,
            participation,
            stake,
        }
    }
}

/// A deterministic quorum election strategy.
pub trait ElectionStrategy: std::fmt::Debug {
    /// Elects up to `seats` anchor nodes from `candidates`.
    fn elect(&self, candidates: &[Candidate], seats: usize) -> Vec<VerifyingKey>;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Top-k by prior participation; ties broken by key bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByParticipation;

impl ElectionStrategy for ByParticipation {
    fn elect(&self, candidates: &[Candidate], seats: usize) -> Vec<VerifyingKey> {
        let mut sorted: Vec<&Candidate> = candidates.iter().collect();
        sorted.sort_by(|a, b| {
            b.participation
                .cmp(&a.participation)
                .then_with(|| a.key.to_bytes().cmp(&b.key.to_bytes()))
        });
        sorted.into_iter().take(seats).map(|c| c.key).collect()
    }

    fn name(&self) -> &'static str {
        "by-participation"
    }
}

/// Top-k by stake; ties broken by key bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByStake;

impl ElectionStrategy for ByStake {
    fn elect(&self, candidates: &[Candidate], seats: usize) -> Vec<VerifyingKey> {
        let mut sorted: Vec<&Candidate> = candidates.iter().collect();
        sorted.sort_by(|a, b| {
            b.stake
                .cmp(&a.stake)
                .then_with(|| a.key.to_bytes().cmp(&b.key.to_bytes()))
        });
        sorted.into_iter().take(seats).map(|c| c.key).collect()
    }

    fn name(&self) -> &'static str {
        "by-stake"
    }
}

/// A seeded random committee: all nodes with the same seed (e.g. derived
/// from a recent block hash) elect the same committee.
#[derive(Debug, Clone, Copy)]
pub struct RandomCommittee {
    seed: u64,
}

impl RandomCommittee {
    /// Creates a committee election with the given shared seed.
    pub fn new(seed: u64) -> RandomCommittee {
        RandomCommittee { seed }
    }
}

impl ElectionStrategy for RandomCommittee {
    fn elect(&self, candidates: &[Candidate], seats: usize) -> Vec<VerifyingKey> {
        // Canonical candidate order first, so the sample is independent of
        // the caller's ordering.
        let mut keys: Vec<VerifyingKey> = candidates.iter().map(|c| c.key).collect();
        keys.sort_by_key(|a| a.to_bytes());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let take = seats.min(keys.len());
        // Partial Fisher-Yates.
        for i in 0..take {
            let j = rng.random_range(i..keys.len());
            keys.swap(i, j);
        }
        keys.truncate(take);
        keys
    }

    fn name(&self) -> &'static str {
        "random-committee"
    }
}

/// A fixed, operator-configured quorum (private/consortium chains).
#[derive(Debug, Clone)]
pub struct FixedSet {
    members: Vec<VerifyingKey>,
}

impl FixedSet {
    /// Creates the fixed set.
    pub fn new(members: Vec<VerifyingKey>) -> FixedSet {
        FixedSet { members }
    }
}

impl ElectionStrategy for FixedSet {
    fn elect(&self, _candidates: &[Candidate], seats: usize) -> Vec<VerifyingKey> {
        self.members.iter().take(seats).copied().collect()
    }

    fn name(&self) -> &'static str {
        "fixed-set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_crypto::SigningKey;

    fn candidates(n: u8) -> Vec<Candidate> {
        (0..n)
            .map(|i| {
                Candidate::new(
                    SigningKey::from_seed([i + 1; 32]).verifying_key(),
                    (i as u64) * 10,
                    100 - i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn by_participation_picks_most_active() {
        let cands = candidates(5);
        let elected = ByParticipation.elect(&cands, 2);
        assert_eq!(elected.len(), 2);
        assert_eq!(elected[0], cands[4].key); // participation 40
        assert_eq!(elected[1], cands[3].key); // participation 30
    }

    #[test]
    fn by_stake_picks_richest() {
        let cands = candidates(5);
        let elected = ByStake.elect(&cands, 2);
        assert_eq!(elected[0], cands[0].key); // stake 100
        assert_eq!(elected[1], cands[1].key);
    }

    #[test]
    fn ties_broken_deterministically() {
        let mut cands = candidates(4);
        for c in &mut cands {
            c.participation = 7;
        }
        let a = ByParticipation.elect(&cands, 2);
        cands.reverse();
        let b = ByParticipation.elect(&cands, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn random_committee_deterministic_per_seed() {
        let cands = candidates(10);
        let a = RandomCommittee::new(42).elect(&cands, 4);
        let b = RandomCommittee::new(42).elect(&cands, 4);
        assert_eq!(a, b);
        let c = RandomCommittee::new(43).elect(&cands, 4);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn random_committee_independent_of_input_order() {
        let mut cands = candidates(10);
        let a = RandomCommittee::new(7).elect(&cands, 3);
        cands.reverse();
        let b = RandomCommittee::new(7).elect(&cands, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn random_committee_no_duplicates() {
        let cands = candidates(8);
        let elected = RandomCommittee::new(1).elect(&cands, 8);
        let mut dedup = elected.clone();
        dedup.sort_by_key(|a| a.to_bytes());
        dedup.dedup();
        assert_eq!(dedup.len(), elected.len());
    }

    #[test]
    fn seats_capped_at_candidate_count() {
        let cands = candidates(3);
        assert_eq!(ByParticipation.elect(&cands, 10).len(), 3);
        assert_eq!(RandomCommittee::new(1).elect(&cands, 10).len(), 3);
    }

    #[test]
    fn fixed_set_ignores_candidates() {
        let members: Vec<VerifyingKey> = candidates(2).into_iter().map(|c| c.key).collect();
        let strategy = FixedSet::new(members.clone());
        assert_eq!(strategy.elect(&candidates(9), 2), members);
        assert_eq!(strategy.name(), "fixed-set");
    }
}

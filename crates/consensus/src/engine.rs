//! Pluggable consensus engines.
//!
//! The selective-deletion concept "is independent of the specific consensus
//! algorithm" (§IV-A) and "any consensus algorithm can be extended by the
//! described behavior" (§V-B3). This module makes that independence
//! concrete: engines seal and verify **normal and empty** blocks, while
//! genesis and summary blocks are always [`Seal::Deterministic`] — summary
//! blocks must be derivable by every node on its own, so they can never
//! carry engine-specific data ("the nonce … \[is\] not needed anymore").

use std::fmt;

use seldel_chain::{BlockHeader, BlockKind, Seal};
use seldel_crypto::{Digest32, SigningKey, VerifyingKey};

/// Errors from sealing or verifying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// Proof-of-work search exhausted its iteration budget.
    NonceSearchExhausted {
        /// Iterations tried.
        tried: u64,
    },
    /// The seal variant does not match the engine (e.g. a nonce under
    /// proof-of-authority).
    WrongSealKind {
        /// Engine name.
        engine: &'static str,
    },
    /// Proof-of-work hash does not meet the difficulty target.
    InsufficientWork {
        /// Leading zero bits achieved.
        got: u32,
        /// Leading zero bits required.
        needed: u32,
    },
    /// Authority signature invalid or signer not an authority.
    BadAuthority,
    /// This engine cannot seal (no signing key configured).
    NotASigner,
    /// Deterministic blocks (genesis/summary) must carry no seal.
    UnexpectedSealOnDeterministicBlock,
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::NonceSearchExhausted { tried } => {
                write!(f, "nonce search exhausted after {tried} iterations")
            }
            SealError::WrongSealKind { engine } => {
                write!(f, "seal kind does not match engine {engine}")
            }
            SealError::InsufficientWork { got, needed } => {
                write!(
                    f,
                    "insufficient work: {got} leading zero bits, need {needed}"
                )
            }
            SealError::BadAuthority => f.write_str("invalid authority signature"),
            SealError::NotASigner => f.write_str("engine has no signing key"),
            SealError::UnexpectedSealOnDeterministicBlock => {
                f.write_str("deterministic block kinds must not carry a seal")
            }
        }
    }
}

impl std::error::Error for SealError {}

/// A consensus engine: seals new blocks and verifies received ones.
pub trait ConsensusEngine: fmt::Debug + Send + Sync {
    /// Engine name for logs and reports.
    fn name(&self) -> &'static str;

    /// Produces a seal for a draft header (whose `seal` field is
    /// [`Seal::Deterministic`] during the search).
    ///
    /// # Errors
    ///
    /// Engine-specific; see [`SealError`].
    fn seal(&self, header: &BlockHeader) -> Result<Seal, SealError>;

    /// Verifies the seal on a header.
    ///
    /// # Errors
    ///
    /// Engine-specific; see [`SealError`].
    fn verify(&self, header: &BlockHeader) -> Result<(), SealError>;
}

/// Returns `Ok(())` early for block kinds that are always deterministic,
/// or an error if they unexpectedly carry a seal.
fn check_deterministic_kinds(header: &BlockHeader) -> Option<Result<(), SealError>> {
    match header.kind {
        BlockKind::Summary | BlockKind::Genesis => Some(if header.seal == Seal::Deterministic {
            Ok(())
        } else {
            Err(SealError::UnexpectedSealOnDeterministicBlock)
        }),
        _ => None,
    }
}

/// The trivial engine: everything is sealed deterministically. Used by
/// single-node ledgers, tests and the quorum-vote configuration where block
/// ordering is decided by vote rather than by seal.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEngine;

impl ConsensusEngine for NullEngine {
    fn name(&self) -> &'static str {
        "null"
    }

    fn seal(&self, _header: &BlockHeader) -> Result<Seal, SealError> {
        Ok(Seal::Deterministic)
    }

    fn verify(&self, header: &BlockHeader) -> Result<(), SealError> {
        if let Some(result) = check_deterministic_kinds(header) {
            return result;
        }
        match header.seal {
            Seal::Deterministic => Ok(()),
            _ => Err(SealError::WrongSealKind { engine: "null" }),
        }
    }
}

/// Counts leading zero bits of a digest (the PoW difficulty measure).
pub fn leading_zero_bits(digest: &Digest32) -> u32 {
    let mut bits = 0;
    for byte in digest.as_bytes() {
        if *byte == 0 {
            bits += 8;
        } else {
            bits += byte.leading_zeros();
            break;
        }
    }
    bits
}

/// Simple hash-based proof of work: find a nonce such that the header hash
/// has at least `difficulty_bits` leading zero bits.
#[derive(Debug, Clone, Copy)]
pub struct ProofOfWork {
    difficulty_bits: u32,
    max_iterations: u64,
}

impl ProofOfWork {
    /// Creates an engine with the given difficulty.
    pub fn new(difficulty_bits: u32) -> ProofOfWork {
        ProofOfWork {
            difficulty_bits,
            max_iterations: u64::MAX,
        }
    }

    /// Bounds the nonce search (useful in tests and simulations).
    pub fn with_max_iterations(mut self, max: u64) -> ProofOfWork {
        self.max_iterations = max;
        self
    }

    /// The difficulty in leading zero bits.
    pub fn difficulty_bits(&self) -> u32 {
        self.difficulty_bits
    }
}

impl ConsensusEngine for ProofOfWork {
    fn name(&self) -> &'static str {
        "proof-of-work"
    }

    fn seal(&self, header: &BlockHeader) -> Result<Seal, SealError> {
        let mut candidate = header.clone();
        for nonce in 0..self.max_iterations {
            candidate.seal = Seal::Nonce(nonce);
            if leading_zero_bits(&candidate.hash()) >= self.difficulty_bits {
                return Ok(Seal::Nonce(nonce));
            }
        }
        Err(SealError::NonceSearchExhausted {
            tried: self.max_iterations,
        })
    }

    fn verify(&self, header: &BlockHeader) -> Result<(), SealError> {
        if let Some(result) = check_deterministic_kinds(header) {
            return result;
        }
        match header.seal {
            Seal::Nonce(_) => {
                let got = leading_zero_bits(&header.hash());
                if got >= self.difficulty_bits {
                    Ok(())
                } else {
                    Err(SealError::InsufficientWork {
                        got,
                        needed: self.difficulty_bits,
                    })
                }
            }
            _ => Err(SealError::WrongSealKind {
                engine: "proof-of-work",
            }),
        }
    }
}

/// Proof of authority: blocks are sealed by a signature from one of a fixed
/// set of authorities over the pre-seal header digest.
#[derive(Debug, Clone)]
pub struct ProofOfAuthority {
    authorities: Vec<VerifyingKey>,
    signer: Option<SigningKey>,
}

impl fmt::Display for ProofOfAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proof-of-authority ({} authorities)",
            self.authorities.len()
        )
    }
}

impl ProofOfAuthority {
    /// Creates a verifying-only engine.
    pub fn new(authorities: Vec<VerifyingKey>) -> ProofOfAuthority {
        ProofOfAuthority {
            authorities,
            signer: None,
        }
    }

    /// Enables sealing with the given authority key.
    pub fn with_signer(mut self, signer: SigningKey) -> ProofOfAuthority {
        self.signer = Some(signer);
        self
    }

    /// The configured authorities.
    pub fn authorities(&self) -> &[VerifyingKey] {
        &self.authorities
    }
}

impl ConsensusEngine for ProofOfAuthority {
    fn name(&self) -> &'static str {
        "proof-of-authority"
    }

    fn seal(&self, header: &BlockHeader) -> Result<Seal, SealError> {
        let signer = self.signer.as_ref().ok_or(SealError::NotASigner)?;
        if !self.authorities.contains(&signer.verifying_key()) {
            return Err(SealError::BadAuthority);
        }
        let digest = header.preseal_digest();
        Ok(Seal::Authority {
            signer: signer.verifying_key(),
            signature: signer.sign(digest.as_bytes()),
        })
    }

    fn verify(&self, header: &BlockHeader) -> Result<(), SealError> {
        if let Some(result) = check_deterministic_kinds(header) {
            return result;
        }
        match &header.seal {
            Seal::Authority { signer, signature } => {
                if !self.authorities.contains(signer) {
                    return Err(SealError::BadAuthority);
                }
                let digest = header.preseal_digest();
                signer
                    .verify(digest.as_bytes(), signature)
                    .map_err(|_| SealError::BadAuthority)
            }
            _ => Err(SealError::WrongSealKind {
                engine: "proof-of-authority",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{Block, BlockBody, BlockNumber, Timestamp};

    fn draft(kind: BlockKind) -> BlockHeader {
        let body = match kind {
            BlockKind::Normal => BlockBody::Normal { entries: vec![] },
            BlockKind::Summary => BlockBody::Summary {
                records: vec![],
                deletions: vec![],
                anchor: None,
            },
            BlockKind::Empty => BlockBody::Empty,
            BlockKind::Genesis => BlockBody::Genesis { note: "g".into() },
        };
        Block::new(
            BlockNumber(5),
            Timestamp(50),
            seldel_crypto::sha256(b"prev"),
            body,
            Seal::Deterministic,
        )
        .header()
        .clone()
    }

    #[test]
    fn null_engine_round_trip() {
        let engine = NullEngine;
        let header = draft(BlockKind::Normal);
        assert_eq!(engine.seal(&header).unwrap(), Seal::Deterministic);
        engine.verify(&header).unwrap();
    }

    #[test]
    fn pow_seal_and_verify() {
        let engine = ProofOfWork::new(8);
        let mut header = draft(BlockKind::Normal);
        header.seal = engine.seal(&header).unwrap();
        engine.verify(&header).unwrap();
        assert!(leading_zero_bits(&header.hash()) >= 8);
    }

    #[test]
    fn pow_rejects_insufficient_work() {
        let low = ProofOfWork::new(2);
        let high = ProofOfWork::new(24);
        let mut header = draft(BlockKind::Normal);
        header.seal = low.seal(&header).unwrap();
        // Verifying a 2-bit seal at 24-bit difficulty fails (overwhelmingly
        // likely; the seal was found at the first 2-bit nonce).
        match high.verify(&header) {
            Err(SealError::InsufficientWork { needed: 24, .. }) => {}
            Ok(()) => {
                // Freak coincidence: the low-difficulty nonce also meets 24
                // bits. Accept but assert the work is actually there.
                assert!(leading_zero_bits(&header.hash()) >= 24);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn pow_search_budget() {
        let engine = ProofOfWork::new(60).with_max_iterations(10);
        let header = draft(BlockKind::Normal);
        assert_eq!(
            engine.seal(&header),
            Err(SealError::NonceSearchExhausted { tried: 10 })
        );
    }

    #[test]
    fn pow_exempts_summary_blocks() {
        let engine = ProofOfWork::new(20);
        let header = draft(BlockKind::Summary);
        engine.verify(&header).unwrap();
        // A summary with a nonce is invalid.
        let mut bad = header;
        bad.seal = Seal::Nonce(1);
        assert_eq!(
            engine.verify(&bad),
            Err(SealError::UnexpectedSealOnDeterministicBlock)
        );
    }

    #[test]
    fn poa_seal_and_verify() {
        let auth = SigningKey::from_seed([1u8; 32]);
        let engine = ProofOfAuthority::new(vec![auth.verifying_key()]).with_signer(auth.clone());
        let mut header = draft(BlockKind::Normal);
        header.seal = engine.seal(&header).unwrap();
        engine.verify(&header).unwrap();
    }

    #[test]
    fn poa_rejects_outsider() {
        let auth = SigningKey::from_seed([1u8; 32]);
        let outsider = SigningKey::from_seed([2u8; 32]);
        let sealer =
            ProofOfAuthority::new(vec![outsider.verifying_key()]).with_signer(outsider.clone());
        let verifier = ProofOfAuthority::new(vec![auth.verifying_key()]);
        let mut header = draft(BlockKind::Normal);
        header.seal = sealer.seal(&header).unwrap();
        assert_eq!(verifier.verify(&header), Err(SealError::BadAuthority));
    }

    #[test]
    fn poa_rejects_tampered_header() {
        let auth = SigningKey::from_seed([1u8; 32]);
        let engine = ProofOfAuthority::new(vec![auth.verifying_key()]).with_signer(auth.clone());
        let mut header = draft(BlockKind::Normal);
        header.seal = engine.seal(&header).unwrap();
        header.timestamp = Timestamp(51); // tamper after sealing
        assert_eq!(engine.verify(&header), Err(SealError::BadAuthority));
    }

    #[test]
    fn poa_cannot_seal_without_key() {
        let auth = SigningKey::from_seed([1u8; 32]);
        let engine = ProofOfAuthority::new(vec![auth.verifying_key()]);
        assert_eq!(
            engine.seal(&draft(BlockKind::Normal)),
            Err(SealError::NotASigner)
        );
    }

    #[test]
    fn wrong_seal_kind_rejected() {
        let engine = NullEngine;
        let mut header = draft(BlockKind::Normal);
        header.seal = Seal::Nonce(3);
        assert_eq!(
            engine.verify(&header),
            Err(SealError::WrongSealKind { engine: "null" })
        );
    }

    #[test]
    fn leading_zero_bits_cases() {
        assert_eq!(leading_zero_bits(&Digest32::from_bytes([0xff; 32])), 0);
        assert_eq!(leading_zero_bits(&Digest32::from_bytes([0x00; 32])), 256);
        let mut bytes = [0u8; 32];
        bytes[0] = 0x0f;
        assert_eq!(leading_zero_bits(&Digest32::from_bytes(bytes)), 4);
        bytes[0] = 0;
        bytes[1] = 0x80;
        assert_eq!(leading_zero_bits(&Digest32::from_bytes(bytes)), 8);
    }
}

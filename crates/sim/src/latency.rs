//! Experiment E2 — deletion latency (§IV-D3, "Delayed Deletion").
//!
//! Deletion is executed only when the target's sequence is merged out, so
//! latency depends on the target's position, l, l_max and traffic. The
//! idle filler ("extend the blockchain with empty blocks") bounds latency
//! on quiet chains; this experiment measures both configurations.

use std::collections::BTreeMap;

use seldel_chain::{BlockNumber, Entry, EntryId, EntryNumber, Timestamp};
use seldel_codec::DataRecord;
use seldel_core::{
    ChainConfig, IdleFillPolicy, LedgerEvent, RetentionPolicy, RetireMode, SelectiveLedger,
};
use seldel_crypto::SigningKey;

/// Latency experiment parameters.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Sequence length l.
    pub sequence_length: u64,
    /// Retention limit l_max.
    pub l_max: u64,
    /// Payload blocks to drive after the deletion request.
    pub horizon_blocks: u64,
    /// Block cadence in virtual ms.
    pub block_interval_ms: u64,
    /// Enable the idle filler at this interval (ms).
    pub idle_fill_ms: Option<u64>,
    /// How many deletion requests to measure.
    pub deletions: usize,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            sequence_length: 5,
            l_max: 30,
            horizon_blocks: 400,
            block_interval_ms: 10,
            idle_fill_ms: None,
            deletions: 10,
        }
    }
}

/// One measured deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// The deleted data set.
    pub target: EntryId,
    /// Block height when the request was marked.
    pub requested_at_block: BlockNumber,
    /// Virtual time when the request was marked.
    pub requested_at: Timestamp,
    /// Block height of the merge that dropped the record.
    pub executed_at_block: BlockNumber,
    /// Virtual time of execution.
    pub executed_at: Timestamp,
}

impl LatencySample {
    /// Latency in blocks.
    pub fn blocks(&self) -> u64 {
        self.executed_at_block.value() - self.requested_at_block.value()
    }

    /// Latency in virtual ms.
    pub fn millis(&self) -> u64 {
        self.executed_at.since(self.requested_at)
    }
}

fn chain_config(cfg: &LatencyConfig) -> ChainConfig {
    ChainConfig {
        sequence_length: cfg.sequence_length,
        retention: RetentionPolicy {
            max_live_blocks: Some(cfg.l_max),
            min_live_blocks: cfg.sequence_length,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        idle_fill: cfg
            .idle_fill_ms
            .map(|ms| IdleFillPolicy { max_idle_ms: ms }),
        ..Default::default()
    }
}

/// Runs the latency experiment: writes one entry per block, issues
/// `deletions` requests against fresh entries, and records when each is
/// physically executed.
pub fn run_latency(cfg: &LatencyConfig) -> Vec<LatencySample> {
    let key = SigningKey::from_seed([0x52; 32]);
    let mut ledger = SelectiveLedger::new(chain_config(cfg));
    let mut now = Timestamp(0);
    let mut samples: Vec<LatencySample> = Vec::new();
    let mut pending: Vec<EntryId> = Vec::new();
    let mut marked: BTreeMap<EntryId, (BlockNumber, Timestamp)> = BTreeMap::new();
    let mut issued = 0usize;
    let mut counter = 0u64;

    // Space the deletion requests across the first half of the horizon.
    let request_every = (cfg.horizon_blocks / (2 * cfg.deletions as u64)).max(1);

    for step in 0..cfg.horizon_blocks {
        now += cfg.block_interval_ms;
        counter += 1;
        ledger
            .submit_entry(Entry::sign_data(
                &key,
                DataRecord::new("log").with("n", counter),
            ))
            .expect("valid entry");
        let sealed = ledger.seal_block(now).expect("monotone time");

        // Issue a deletion request for the entry just written.
        if issued < cfg.deletions && step % request_every == 0 {
            let target = EntryId::new(sealed, EntryNumber(0));
            if ledger
                .request_deletion(&key, target, "latency probe")
                .is_ok()
            {
                pending.push(target);
                issued += 1;
            }
        }

        if let Some(idle) = cfg.idle_fill_ms {
            // Let virtual time pass between blocks to trigger the filler.
            now += idle;
            ledger.tick(now);
        }

        for event in ledger.drain_events() {
            match event {
                // Capture the request metadata while the mark is pending:
                // executed registry records are compacted away at the merge
                // that drops their target, so the registry can no longer be
                // queried after the fact.
                LedgerEvent::DeletionMarked { target, .. } if pending.contains(&target) => {
                    if let Some(record) = ledger.deletion_status(target) {
                        marked.insert(target, (record.request_entry.block, record.requested_at));
                    }
                }
                LedgerEvent::DeletionExecuted { target, at } => {
                    if let Some((requested_at_block, requested_at)) = marked.remove(&target) {
                        samples.push(LatencySample {
                            target,
                            requested_at_block,
                            requested_at,
                            executed_at_block: ledger.chain().tip().number(),
                            executed_at: at,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    samples
}

/// Convenience: mean latency in blocks for a configuration.
pub fn mean_latency_blocks(cfg: &LatencyConfig) -> f64 {
    let samples = run_latency(cfg);
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().map(|s| s.blocks() as f64).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requested_deletions_execute() {
        let cfg = LatencyConfig::default();
        let samples = run_latency(&cfg);
        assert_eq!(samples.len(), cfg.deletions, "all probes must execute");
        for s in &samples {
            assert!(s.blocks() > 0);
            assert!(s.millis() > 0);
        }
    }

    #[test]
    fn latency_bounded_by_chain_parameters() {
        let cfg = LatencyConfig::default();
        let samples = run_latency(&cfg);
        // A fresh entry sits at most l_max + l blocks away from its merge.
        let bound = cfg.l_max + 2 * cfg.sequence_length;
        for s in &samples {
            assert!(
                s.blocks() <= bound,
                "latency {} blocks exceeds bound {bound}",
                s.blocks()
            );
        }
    }

    #[test]
    fn smaller_l_max_means_lower_latency() {
        let quick = LatencyConfig {
            l_max: 10,
            sequence_length: 5,
            ..Default::default()
        };
        let slow = LatencyConfig {
            l_max: 60,
            sequence_length: 5,
            ..Default::default()
        };
        let quick_mean = mean_latency_blocks(&quick);
        let slow_mean = mean_latency_blocks(&slow);
        assert!(
            quick_mean < slow_mean,
            "l_max 10 → {quick_mean}, l_max 60 → {slow_mean}"
        );
    }

    #[test]
    fn idle_filler_bounds_wall_clock_latency() {
        // Sparse traffic: long virtual gaps between payload blocks.
        let without = LatencyConfig {
            horizon_blocks: 200,
            block_interval_ms: 1000,
            idle_fill_ms: None,
            deletions: 5,
            ..Default::default()
        };
        let with = LatencyConfig {
            idle_fill_ms: Some(100),
            ..without.clone()
        };
        let lat_without = run_latency(&without);
        let lat_with = run_latency(&with);
        assert!(!lat_with.is_empty());
        let mean_ms_without: f64 =
            lat_without.iter().map(|s| s.millis() as f64).sum::<f64>() / lat_without.len() as f64;
        let mean_ms_with: f64 =
            lat_with.iter().map(|s| s.millis() as f64).sum::<f64>() / lat_with.len() as f64;
        assert!(
            mean_ms_with < mean_ms_without,
            "filler must reduce virtual-time latency: {mean_ms_with} vs {mean_ms_without}"
        );
    }
}

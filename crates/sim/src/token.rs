//! A small account-based token ledger on top of the selective-deletion
//! chain.
//!
//! Exercises two claims of the paper's §V-A:
//!
//! * **Semantic cohesion** — transfers depend on the sender's previous
//!   token entry, so deleting spent history requires the co-signatures of
//!   dependents (§IV-D2);
//! * **Recovery** — "In the case of cryptocurrencies, it offers the
//!   possibility to make lost coins usable again … for the entire
//!   blockchain system": balances of long-inactive accounts are swept back
//!   to the treasury, after which their stale history can be deleted and
//!   eventually pruned.

use std::collections::BTreeMap;

use seldel_chain::{Entry, EntryId, Timestamp};
use seldel_codec::schema::SchemaRegistry;
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, CoreError, Role, RoleTable, SelectiveLedger};
use seldel_crypto::SigningKey;

/// The YAML schema of token operations.
pub const TOKEN_SCHEMA_YAML: &str = "\
record: token
fields:
  op: str
  account: str
  counterparty: str?
  amount: u64
";

/// Errors specific to token semantics (wrapping ledger errors).
#[derive(Debug)]
pub enum TokenError {
    /// Account balance too low for the transfer.
    InsufficientFunds {
        /// The overdrawing account.
        account: String,
        /// Current balance.
        balance: u64,
        /// Attempted amount.
        amount: u64,
    },
    /// Unknown account name.
    UnknownAccount(String),
    /// Underlying ledger error.
    Ledger(CoreError),
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::InsufficientFunds {
                account,
                balance,
                amount,
            } => write!(f, "account {account:?} has {balance}, cannot move {amount}"),
            TokenError::UnknownAccount(name) => write!(f, "unknown account {name:?}"),
            TokenError::Ledger(e) => write!(f, "ledger error: {e}"),
        }
    }
}

impl std::error::Error for TokenError {}

impl From<CoreError> for TokenError {
    fn from(e: CoreError) -> Self {
        TokenError::Ledger(e)
    }
}

/// The token ledger driver.
#[derive(Debug, Clone)]
pub struct TokenLedger {
    ledger: SelectiveLedger,
    treasury: SigningKey,
    accounts: BTreeMap<String, SigningKey>,
    /// Last token entry per account (dependency anchor for transfers).
    last_op: BTreeMap<String, EntryId>,
    /// Last activity time per account (for the inactivity sweep).
    last_active: BTreeMap<String, Timestamp>,
    now: Timestamp,
}

impl TokenLedger {
    /// Creates a token ledger; the treasury key holds the admin role.
    pub fn new(mut config: ChainConfig) -> TokenLedger {
        config.chain_note = "token ledger".to_string();
        let treasury = SigningKey::from_seed([0x7A; 32]);
        let mut schemas = SchemaRegistry::new();
        schemas
            .register_yaml(TOKEN_SCHEMA_YAML)
            .expect("static schema parses");
        let roles = RoleTable::new().with(treasury.verifying_key(), Role::Admin);
        let ledger = SelectiveLedger::builder(config)
            .schemas(schemas)
            .roles(roles)
            .build();
        TokenLedger {
            ledger,
            treasury,
            accounts: BTreeMap::new(),
            last_op: BTreeMap::new(),
            last_active: BTreeMap::new(),
            now: Timestamp(0),
        }
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &SelectiveLedger {
        &self.ledger
    }

    /// Registers an account with a deterministic key.
    pub fn open_account(&mut self, name: impl Into<String>) {
        let name = name.into();
        let mut seed = [0u8; 32];
        let bytes = name.as_bytes();
        seed[..bytes.len().min(32)].copy_from_slice(&bytes[..bytes.len().min(32)]);
        seed[31] = 0x77;
        self.accounts.insert(name, SigningKey::from_seed(seed));
    }

    fn account_key(&self, name: &str) -> Result<&SigningKey, TokenError> {
        self.accounts
            .get(name)
            .ok_or_else(|| TokenError::UnknownAccount(name.to_string()))
    }

    /// Mints `amount` to `account` (treasury action).
    ///
    /// # Errors
    ///
    /// Unknown account or ledger intake failure.
    pub fn mint(&mut self, account: &str, amount: u64) -> Result<(), TokenError> {
        self.account_key(account)?;
        let record = DataRecord::new("token")
            .with("op", "mint")
            .with("account", account)
            .with("amount", amount);
        let entry = Entry::sign_data(&self.treasury, record);
        self.ledger.submit_entry(entry)?;
        self.last_active.insert(account.to_string(), self.now);
        Ok(())
    }

    /// Transfers tokens; the entry depends on the sender's previous token
    /// entry, building the transaction chain of §IV-D2.
    ///
    /// # Errors
    ///
    /// Insufficient funds, unknown accounts, or ledger intake failure.
    pub fn transfer(&mut self, from: &str, to: &str, amount: u64) -> Result<(), TokenError> {
        self.account_key(to)?;
        let key = self.account_key(from)?.clone();
        let balance = self.balance(from);
        if balance < amount {
            return Err(TokenError::InsufficientFunds {
                account: from.to_string(),
                balance,
                amount,
            });
        }
        let deps: Vec<EntryId> = self.last_op.get(from).copied().into_iter().collect();
        let record = DataRecord::new("token")
            .with("op", "transfer")
            .with("account", from)
            .with("counterparty", to)
            .with("amount", amount);
        let entry = Entry::sign_data_with(&key, record, None, deps);
        self.ledger.submit_entry(entry)?;
        self.last_active.insert(from.to_string(), self.now);
        self.last_active.insert(to.to_string(), self.now);
        Ok(())
    }

    /// Seals a block (advancing time by `dt` ms) and refreshes the
    /// dependency anchors of the entries just included.
    ///
    /// # Errors
    ///
    /// Propagates sealing errors.
    pub fn seal(&mut self, dt: u64) -> Result<(), TokenError> {
        self.now += dt;
        let number = self
            .ledger
            .seal_block(self.now)
            .map_err(TokenError::Ledger)?;
        if let Some(block) = self.ledger.chain().get(number) {
            for (i, entry) in block.entries().iter().enumerate() {
                if let Some(record) = entry.payload().as_data() {
                    if record.schema() == "token" {
                        if let Some(account) = record.get("account").and_then(|v| v.as_str()) {
                            self.last_op.insert(
                                account.to_string(),
                                EntryId::new(number, seldel_chain::EntryNumber(i as u32)),
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes the balance of an account by folding live token records in
    /// chain order.
    pub fn balance(&self, account: &str) -> u64 {
        let mut balance: i128 = 0;
        for (_, record) in self.ledger.chain().live_records() {
            if record.schema() != "token" {
                continue;
            }
            let op = record.get("op").and_then(|v| v.as_str()).unwrap_or("");
            let acct = record.get("account").and_then(|v| v.as_str()).unwrap_or("");
            let counterparty = record
                .get("counterparty")
                .and_then(|v| v.as_str())
                .unwrap_or("");
            let amount = record.get("amount").and_then(|v| v.as_u64()).unwrap_or(0) as i128;
            match op {
                "mint" if acct == account => balance += amount,
                "recover" if acct == account => balance -= amount,
                "transfer" => {
                    if acct == account {
                        balance -= amount;
                    }
                    if counterparty == account {
                        balance += amount;
                    }
                }
                _ => {}
            }
        }
        balance.max(0) as u64
    }

    /// Total tokens currently attributed to open accounts.
    pub fn circulating(&self) -> u64 {
        self.accounts.keys().map(|a| self.balance(a)).sum()
    }

    /// Sweeps accounts inactive for at least `horizon` ms back to the
    /// treasury ("make lost coins usable again … for the entire blockchain
    /// system"). Returns the recovered amount.
    ///
    /// # Errors
    ///
    /// Propagates ledger intake failures.
    pub fn sweep_inactive(&mut self, horizon: u64) -> Result<u64, TokenError> {
        let now = self.now;
        let stale: Vec<String> = self
            .accounts
            .keys()
            .filter(|name| {
                self.last_active
                    .get(*name)
                    .map(|t| now.since(*t) >= horizon)
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let mut recovered = 0u64;
        for name in stale {
            let balance = self.balance(&name);
            if balance == 0 {
                continue;
            }
            let record = DataRecord::new("token")
                .with("op", "recover")
                .with("account", name.as_str())
                .with("amount", balance);
            let entry = Entry::sign_data(&self.treasury, record);
            self.ledger.submit_entry(entry)?;
            recovered += balance;
        }
        Ok(recovered)
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> TokenLedger {
        let mut t = TokenLedger::new(ChainConfig::paper_evaluation());
        for name in ["alice", "bob", "carol"] {
            t.open_account(name);
        }
        t
    }

    #[test]
    fn mint_and_transfer_conserve_supply() {
        let mut t = ledger();
        t.mint("alice", 100).unwrap();
        t.seal(10).unwrap();
        t.transfer("alice", "bob", 30).unwrap();
        t.seal(10).unwrap();
        assert_eq!(t.balance("alice"), 70);
        assert_eq!(t.balance("bob"), 30);
        assert_eq!(t.circulating(), 100);
    }

    #[test]
    fn overdraft_rejected() {
        let mut t = ledger();
        t.mint("alice", 10).unwrap();
        t.seal(10).unwrap();
        let err = t.transfer("alice", "bob", 11).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientFunds { .. }));
    }

    #[test]
    fn unknown_account_rejected() {
        let mut t = ledger();
        assert!(matches!(
            t.mint("mallory", 1),
            Err(TokenError::UnknownAccount(_))
        ));
        t.mint("alice", 5).unwrap();
        t.seal(10).unwrap();
        assert!(matches!(
            t.transfer("alice", "mallory", 1),
            Err(TokenError::UnknownAccount(_))
        ));
    }

    #[test]
    fn balances_survive_pruning() {
        let mut t = ledger();
        t.mint("alice", 100).unwrap();
        t.seal(10).unwrap();
        t.transfer("alice", "bob", 25).unwrap();
        t.seal(10).unwrap();
        // Drive many empty blocks so early sequences get merged out.
        for _ in 0..20 {
            t.seal(10).unwrap();
        }
        assert!(t.ledger().chain().marker().value() > 0, "pruning happened");
        assert_eq!(t.balance("alice"), 75);
        assert_eq!(t.balance("bob"), 25);
        assert_eq!(t.circulating(), 100);
    }

    #[test]
    fn spent_history_deletion_needs_dependents() {
        let mut t = ledger();
        t.mint("alice", 100).unwrap();
        t.seal(10).unwrap();
        t.transfer("alice", "bob", 10).unwrap();
        t.seal(10).unwrap();
        // Find the mint entry id.
        let mint_id = t
            .ledger()
            .chain()
            .live_records()
            .into_iter()
            .find(|(_, r)| r.get("op").and_then(|v| v.as_str()) == Some("mint"))
            .map(|(id, _)| id)
            .unwrap();
        // The treasury (admin role) authorises, but cohesion blocks it:
        // alice's transfer depends on the mint.
        let treasury = t.treasury.clone();
        let err = t
            .ledger
            .request_deletion(&treasury, mint_id, "cleanup")
            .unwrap_err();
        assert!(matches!(err, CoreError::Cohesion(_)));
    }

    #[test]
    fn inactive_sweep_recovers_lost_coins() {
        let mut t = ledger();
        t.mint("alice", 40).unwrap();
        t.mint("carol", 60).unwrap();
        t.seal(10).unwrap();
        // Alice stays active, carol goes dark.
        for i in 0..10 {
            t.transfer("alice", "bob", 1).unwrap();
            t.seal(10).unwrap();
            let _ = i;
        }
        let recovered = t.sweep_inactive(50).unwrap();
        t.seal(10).unwrap();
        assert_eq!(recovered, 60, "carol's lost coins recovered");
        assert_eq!(t.balance("carol"), 0);
        // Supply conserved: alice 30, bob 10, treasury pool 60 (off-account).
        assert_eq!(t.circulating(), 40);
    }
}

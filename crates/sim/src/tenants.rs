//! Multi-tenant workload: Zipf-skewed authors driving a mixed
//! insert/delete/query stream.
//!
//! Real multi-user deployments are not uniform — a handful of hot tenants
//! dominate intake while a long tail of occasional authors still expects
//! fair treatment and fast lookups. This workload models exactly that:
//! `authors` signing keys whose submission rates follow a Zipf
//! distribution with skew `zipf_s`, mixed with owner-issued deletions and
//! batched liveness queries after every sealed block. It is the fixture
//! behind the `exp_shard` experiment (E9) and the fairness/equivalence
//! tests of the sharded query & intake subsystem.
//!
//! Everything is deterministic per seed (the vendored xoshiro `StdRng`),
//! so two runs — or the same run on different storage backends or, under
//! uncapped intake, different shard counts — produce bit-identical
//! chains. (With a `max_block_entries` cap, block composition follows
//! the leader's fair-drain schedule, which depends on author routing.)

use rand::{rngs::StdRng, RngExt, SeedableRng};
use seldel_chain::{BlockStore, Entry, EntryId, Timestamp};
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, CoreError, RetentionPolicy, RetireMode, SelectiveLedger};
use seldel_crypto::SigningKey;

/// A discrete Zipf sampler over ranks `0..n` (rank 0 is the hottest).
///
/// Weights are `1 / (rank + 1)^s`, prenormalised into a CDF; sampling is
/// one uniform draw plus a binary search. `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Multi-tenant workload parameters.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Number of distinct authors (tenants).
    pub authors: usize,
    /// Zipf skew of the author distribution (0 = uniform; ~1 realistic).
    pub zipf_s: f64,
    /// Payload blocks to seal.
    pub blocks: u64,
    /// Entries submitted per sealed block.
    pub entries_per_block: usize,
    /// Every n-th submission is followed by an owner deletion attempt
    /// against a random previously placed entry (0 disables deletions).
    pub delete_every: u64,
    /// Ids per batched liveness query issued after each seal (0 disables
    /// queries).
    pub query_batch: usize,
    /// Sequence length l.
    pub sequence_length: u64,
    /// Retention limit l_max.
    pub l_max: u64,
    /// Leader block capacity (None = seal everything, the default).
    pub max_block_entries: Option<usize>,
    /// Shard count for the index and mempool.
    pub shards: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            authors: 32,
            zipf_s: 1.1,
            blocks: 240,
            entries_per_block: 6,
            delete_every: 11,
            query_batch: 32,
            sequence_length: 5,
            l_max: 60,
            max_block_entries: None,
            shards: seldel_chain::DEFAULT_SHARD_COUNT,
            seed: 0x7E4A7,
        }
    }
}

/// What a multi-tenant run did and found.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Payload blocks sealed.
    pub sealed_blocks: u64,
    /// Live data sets at the end.
    pub live_records: u64,
    /// Owner deletion requests accepted on-chain.
    pub deletions_requested: u64,
    /// Deletion attempts refused (duplicate, already gone, pending twin).
    pub deletions_refused: u64,
    /// Batched liveness queries issued (ids, not batches).
    pub queries: u64,
    /// Queried ids found live.
    pub query_hits: u64,
    /// Entries submitted by the hottest author.
    pub hottest_author_entries: u64,
    /// Entries submitted in total.
    pub total_entries: u64,
}

/// The ledger configuration a tenant run uses.
pub fn tenant_chain_config(cfg: &TenantConfig) -> ChainConfig {
    ChainConfig {
        sequence_length: cfg.sequence_length,
        retention: RetentionPolicy {
            max_live_blocks: Some(cfg.l_max),
            min_live_blocks: cfg.sequence_length,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        max_block_entries: cfg.max_block_entries,
        ..Default::default()
    }
}

/// Runs the workload on the default [`seldel_chain::MemStore`] backend.
pub fn run_multi_tenant(cfg: &TenantConfig) -> (SelectiveLedger, TenantReport) {
    run_multi_tenant_in::<seldel_chain::MemStore>(cfg)
}

/// Runs the workload on an explicit storage backend, returning the final
/// ledger (for lookup benchmarking / cross-backend comparison) and the
/// run report.
pub fn run_multi_tenant_in<S: BlockStore>(
    cfg: &TenantConfig,
) -> (SelectiveLedger<S>, TenantReport) {
    let ledger = SelectiveLedger::builder(tenant_chain_config(cfg))
        .shards(cfg.shards)
        .store_backend::<S>()
        .build();
    drive_multi_tenant(ledger, cfg)
}

/// Drives the workload into a caller-built ledger — the hook for rooted
/// durable backends (open a `FileStore` directory, then drive).
pub fn drive_multi_tenant<S: BlockStore>(
    mut ledger: SelectiveLedger<S>,
    cfg: &TenantConfig,
) -> (SelectiveLedger<S>, TenantReport) {
    let keys: Vec<SigningKey> = (0..cfg.authors)
        .map(|a| {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&(a as u64 + 1).to_le_bytes());
            seed[31] = 0xA7;
            SigningKey::from_seed(seed)
        })
        .collect();
    let zipf = ZipfSampler::new(cfg.authors, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TenantReport {
        sealed_blocks: 0,
        live_records: 0,
        deletions_requested: 0,
        deletions_refused: 0,
        queries: 0,
        query_hits: 0,
        hottest_author_entries: 0,
        total_entries: 0,
    };
    let mut per_author = vec![0u64; cfg.authors];
    // Every id ever placed, with its author rank — deletion targets and
    // query probes (live and long-gone alike).
    let mut placed: Vec<(EntryId, usize)> = Vec::new();
    let mut counter = 0u64;

    for b in 1..=cfg.blocks {
        let ts = Timestamp(b * 10);
        for _ in 0..cfg.entries_per_block {
            counter += 1;
            let author = zipf.sample(&mut rng);
            per_author[author] += 1;
            report.total_entries += 1;
            let record = DataRecord::new("tenant")
                .with("a", author as u64)
                .with("n", counter);
            ledger
                .submit_entry(Entry::sign_data(&keys[author], record))
                .expect("workload entries are unique and valid");

            if cfg.delete_every > 0
                && counter.is_multiple_of(cfg.delete_every)
                && !placed.is_empty()
            {
                let pick = rng.random_range(0..placed.len());
                let (target, owner) = placed[pick];
                match ledger.request_deletion(&keys[owner], target, "tenant-delete") {
                    Ok(()) => report.deletions_requested += 1,
                    Err(
                        CoreError::DuplicateDeletion(_)
                        | CoreError::TargetNotFound(_)
                        | CoreError::DuplicatePending,
                    ) => report.deletions_refused += 1,
                    Err(other) => panic!("unexpected deletion rejection: {other}"),
                }
            }
        }

        let sealed = ledger.seal_block(ts).expect("monotone time");
        report.sealed_blocks += 1;
        // Record what actually landed (the capped drain may have deferred
        // some submissions to a later block).
        let block = ledger.chain().get(sealed).expect("just sealed").clone();
        for (i, entry) in block.entries().iter().enumerate() {
            if entry.is_delete_request() {
                continue;
            }
            let author = entry
                .payload()
                .as_data()
                .and_then(|r| r.get("a"))
                .and_then(|v| v.as_u64())
                .expect("tenant entries carry their author rank") as usize;
            placed.push((
                EntryId::new(sealed, seldel_chain::EntryNumber(i as u32)),
                author,
            ));
        }

        if cfg.query_batch > 0 && !placed.is_empty() {
            let batch: Vec<EntryId> = (0..cfg.query_batch)
                .map(|_| placed[rng.random_range(0..placed.len())].0)
                .collect();
            let audited = ledger.audit_live(&batch);
            report.queries += batch.len() as u64;
            report.query_hits += audited.iter().filter(|live| **live).count() as u64;
        }
    }

    report.live_records = ledger.chain().record_count();
    report.hottest_author_entries = per_author.iter().copied().max().unwrap_or(0);
    (ledger, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::{MemStore, SegStore};

    fn small_cfg() -> TenantConfig {
        TenantConfig {
            authors: 16,
            blocks: 60,
            entries_per_block: 4,
            l_max: 30,
            sequence_length: 5,
            ..Default::default()
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let zipf = ZipfSampler::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 10];
        for _ in 0..5_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().sum::<u64>() == 5_000);
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 must dominate the tail: {counts:?}"
        );
        // Uniform degenerates: no rank dominates.
        let flat = ZipfSampler::new(10, 0.0);
        let mut counts = [0u64; 10];
        for _ in 0..5_000 {
            counts[flat.sample(&mut rng)] += 1;
        }
        assert!(*counts.iter().max().unwrap() < 2 * *counts.iter().min().unwrap());
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = small_cfg();
        let (a, ra) = run_multi_tenant(&cfg);
        let (b, rb) = run_multi_tenant(&cfg);
        assert_eq!(ra, rb);
        assert_eq!(a.chain().tip_hash(), b.chain().tip_hash());
        assert_eq!(a.chain().export_bytes(), b.chain().export_bytes());
        // A different seed diverges.
        let (_, rc) = run_multi_tenant(&TenantConfig {
            seed: 99,
            ..small_cfg()
        });
        assert_ne!(ra, rc);
    }

    #[test]
    fn workload_is_skewed_but_everyone_writes() {
        let (_, report) = run_multi_tenant(&small_cfg());
        let uniform_share = report.total_entries / 16;
        assert!(
            report.hottest_author_entries > uniform_share * 2,
            "hottest {} vs uniform {}",
            report.hottest_author_entries,
            uniform_share
        );
        assert!(report.deletions_requested > 0, "no deletions exercised");
        assert!(report.queries > 0 && report.query_hits > 0);
    }

    #[test]
    fn shard_count_and_backend_are_invisible_to_the_chain() {
        let base = small_cfg();
        let (mem1, r1) = run_multi_tenant_in::<MemStore>(&TenantConfig {
            shards: 1,
            ..base.clone()
        });
        let (mem8, r8) = run_multi_tenant_in::<MemStore>(&TenantConfig {
            shards: 8,
            ..base.clone()
        });
        let (seg, rs) = run_multi_tenant_in::<SegStore>(&TenantConfig { shards: 8, ..base });
        assert_eq!(r1, r8, "shard count changed observable behaviour");
        assert_eq!(r8, rs, "backend changed observable behaviour");
        assert_eq!(mem1.chain().export_bytes(), mem8.chain().export_bytes());
        assert_eq!(mem8.chain().export_bytes(), seg.chain().export_bytes());
        assert_eq!(mem8.chain().entry_index(), &mem8.chain().rebuilt_index());
    }

    #[test]
    fn capped_blocks_respect_the_capacity_and_lose_nothing() {
        let cfg = TenantConfig {
            max_block_entries: Some(3),
            entries_per_block: 5,
            blocks: 40,
            delete_every: 0,
            ..small_cfg()
        };
        let (ledger, report) = run_multi_tenant(&cfg);
        for block in ledger.chain().iter() {
            assert!(
                block.entries().len() <= 3,
                "block {} oversize",
                block.number()
            );
        }
        // The backlog never drained fully (5 in, 3 out per block), but
        // everything sealed so far is intact.
        assert_eq!(report.total_entries, 200);
        assert!(ledger.stats().pending_entries > 0);
    }
}

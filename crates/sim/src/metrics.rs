//! Small statistics helpers for the experiment harness.

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for fewer than two values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Percentile via **nearest-rank** on a copy of the data (p in 0..=100):
/// with `n` values the rank is `k = ceil(p/100 · n)` clamped to `[1, n]`,
/// and the answer is the `k`-th smallest value. This is the textbook
/// nearest-rank definition and matches the telemetry histogram's quantile
/// exactly (the old `round(p/100 · (n-1))` interpolation index disagreed
/// with it at small `n` — e.g. p95 of 10 samples picked the 9th value,
/// not the 10th).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    let n = sorted.len();
    let k = (((p / 100.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[k - 1]
}

/// A five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample size.
    pub count: usize,
}

impl Summary {
    /// Summarises `values`; all-zero summary for empty input.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                count: 0,
            };
        }
        Summary {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values),
            p50: percentile(values, 50.0),
            p90: percentile(values, 90.0),
            p99: percentile(values, 99.0),
            count: values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-9);
        assert!((stddev(&v) - 2.0).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    /// The small-n cases where the old `round(p/100·(n-1))` index
    /// disagreed with nearest-rank: the k-th smallest value with
    /// `k = ceil(p/100 · n)`, never an interpolated neighbour.
    #[test]
    fn percentile_is_nearest_rank_at_small_n() {
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // k = ceil(5.0) = 5 → the 5th smallest (the old index picked 6.0).
        assert_eq!(percentile(&v, 50.0), 5.0);
        // k = ceil(9.5) = 10 → the maximum.
        assert_eq!(percentile(&v, 95.0), 10.0);
        let w = [1.0, 2.0, 3.0, 4.0];
        // k = ceil(1.0) = 1 → the minimum (the old index picked 2.0).
        assert_eq!(percentile(&w, 25.0), 1.0);
        assert_eq!(percentile(&w, 75.0), 3.0);
        // A single sample is every percentile.
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn summary_of_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&v);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }
}

//! Crash/restart scenario: kill a durable ledger mid-push or mid-prune,
//! reopen the directory, and check the recovered chain against a
//! never-closed [`MemStore`](seldel_chain::MemStore) oracle.
//!
//! A real crash cannot be scheduled from safe Rust, but its *observable
//! result* — the on-disk state it leaves behind — can be fabricated
//! precisely from the documented write ordering
//! (`seldel_chain::fstore`): appends are not fsynced between barriers, and
//! a prune runs `fsync tail → manifest → rewrite front → unlink retired`.
//! The scenario therefore drives two identical ledgers (a
//! [`MemStore`](seldel_chain::MemStore) oracle and a [`FileStore`]
//! under test), damages the store directory the
//! way an ill-timed power cut would, reopens it, and asserts the
//! backend-equivalence invariants:
//!
//! * **mid-push** — the newest frame is torn (truncated mid-write):
//!   recovery must drop exactly the torn suffix, and re-applying the lost
//!   blocks from the oracle must converge to bit-identity;
//! * **mid-prune** — the prune's manifest update is durable but the front
//!   rewrite and the unlinks are lost: recovery must finish the prune
//!   (delete stale segments, drop pruned frames) and come back
//!   bit-identical to the oracle with **zero** lost blocks;
//! * **deferred-commit** — the store runs in pipelined-commit mode with
//!   the background fsync worker stalled, so blocks append while their
//!   durability lags: the power cut keeps exactly the prefix the durable
//!   watermark (`durable_up_to`) covered, and recovery must come back to
//!   **precisely** that watermark — the boundary the node layer gates its
//!   `NewBlock` broadcasts on.
//!
//! The driver asserts (panicking on violation, like every sim invariant
//! check) and also returns a [`CrashReport`] so experiment binaries can
//! print/serialise the outcome.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use seldel_chain::{
    validate_store_incremental, BlockKind, BlockStore, Entry, FileStore, Timestamp,
};
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, RetentionPolicy, RetireMode, SelectiveLedger};
use seldel_crypto::SigningKey;

/// Which write the simulated power cut interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash while appending a block frame: the tail frame is torn.
    MidPush,
    /// Crash inside the prune sequence, after the manifest became durable
    /// but before the front rewrite and the unlinks.
    MidPrune,
    /// Crash while the pipelined commit stage still owes fsyncs: blocks
    /// were appended past the durable watermark and every one of them is
    /// lost; recovery lands exactly on `durable_up_to`.
    DeferredCommit,
    /// No damage at all — a clean close (the control run).
    CleanClose,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrashPoint::MidPush => "mid-push",
            CrashPoint::MidPrune => "mid-prune",
            CrashPoint::DeferredCommit => "deferred-commit",
            CrashPoint::CleanClose => "clean-close",
        })
    }
}

/// Crash scenario parameters.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Payload blocks to drive before the crash window opens.
    pub blocks_before_crash: u64,
    /// Payload blocks to drive after recovery (resumed operation).
    pub blocks_after_recovery: u64,
    /// Entries per payload block.
    pub entries_per_block: usize,
    /// Segment capacity of the store under test (small values exercise
    /// whole-segment retirement frequently).
    pub segment_capacity: usize,
    /// The interrupted write.
    pub point: CrashPoint,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            blocks_before_crash: 60,
            blocks_after_recovery: 30,
            entries_per_block: 2,
            segment_capacity: 8,
            point: CrashPoint::MidPush,
        }
    }
}

/// Outcome of one crash/restart run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// The interrupted write.
    pub point: CrashPoint,
    /// Oracle tip number at the moment of the crash.
    pub oracle_tip: u64,
    /// Tip number right after reopening the damaged directory.
    pub recovered_tip: u64,
    /// Blocks the crash destroyed (reopened behind the oracle).
    pub lost_blocks: u64,
    /// Blocks re-applied from the oracle (peers, in a real deployment) to
    /// converge; summary blocks re-derive locally and are not counted.
    pub reapplied_blocks: u64,
    /// Marker (shifting genesis) after full convergence.
    pub final_marker: u64,
    /// Live blocks after the post-recovery workload.
    pub final_live_blocks: u64,
}

/// The ledger configuration the crash scenario drives (short sequences, a
/// tight `l_max`, so merges and prunes fire often). Public so experiment
/// binaries can reopen a scenario directory under the same rules.
pub fn crash_chain_config() -> ChainConfig {
    ChainConfig {
        sequence_length: 5,
        retention: RetentionPolicy {
            max_live_blocks: Some(30),
            min_live_blocks: 5,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        ..Default::default()
    }
}

fn workload_entry(key: &SigningKey, n: u64) -> Entry {
    Entry::sign_data(
        key,
        DataRecord::new("log").with("n", n).with("payload", "crash"),
    )
}

/// Drives one payload block into both ledgers.
fn step<A: BlockStore, B: BlockStore>(
    oracle: &mut SelectiveLedger<A>,
    durable: &mut SelectiveLedger<B>,
    key: &SigningKey,
    block: u64,
    entries_per_block: usize,
    counter: &mut u64,
) {
    let ts = Timestamp(block * 10);
    for _ in 0..entries_per_block {
        *counter += 1;
        let entry = workload_entry(key, *counter);
        oracle.submit_entry(entry.clone()).expect("oracle accepts");
        durable.submit_entry(entry).expect("durable accepts");
    }
    oracle.seal_block(ts).expect("monotone time");
    durable.seal_block(ts).expect("monotone time");
}

/// Snapshot of every segment file in a store directory.
fn snapshot_segments(dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("store dir readable") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("seg-") && name.ends_with(".seg") {
            out.insert(path.clone(), fs::read(&path).expect("segment readable"));
        }
    }
    out
}

/// Number of complete length-prefixed frames in a segment file's bytes.
fn frame_count(bytes: &[u8]) -> usize {
    let mut count = 0usize;
    let mut pos = 0usize;
    while bytes.len() - pos >= 4 {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if bytes.len() - pos - 4 < len {
            break;
        }
        pos += 4 + len;
        count += 1;
    }
    count
}

/// Whether the newest segment file is still partially filled — i.e. its
/// latest frame was an *unsynced* append (a filled segment is fsynced by
/// the store, so tearing it would fabricate an impossible crash state).
fn tail_frame_is_unsynced(dir: &Path, segment_capacity: usize) -> bool {
    let files = snapshot_segments(dir);
    let Some(newest) = files.keys().max() else {
        return false;
    };
    let frames = frame_count(&files[newest]);
    frames >= 1 && frames < segment_capacity
}

/// Fabricates the mid-push crash state: the last frame of the newest
/// segment file is torn (the power cut hit `write_all`).
fn tear_tail_frame(dir: &Path) {
    let newest = snapshot_segments(dir)
        .into_keys()
        .max()
        .expect("at least one segment");
    let len = fs::metadata(&newest).expect("metadata").len();
    assert!(len > 3, "tail segment too small to tear");
    let file = fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .expect("open tail");
    file.set_len(len - 3).expect("truncate");
}

/// Fabricates the deferred-commit crash state: every frame **above** the
/// captured durable watermark is discarded, newest segment first — the
/// power cut lost exactly the writes whose fsyncs were still queued on
/// the commit stage. Frames at or below the watermark were covered by a
/// real fsync when the watermark advanced, so they survive byte-for-byte.
fn truncate_past_watermark(dir: &Path, watermark: u64) {
    let files = snapshot_segments(dir);
    for (path, bytes) in files.iter().rev() {
        let frames = seldel_chain::segment_frame_numbers(bytes);
        match frames.iter().find(|&&(_, number)| number > watermark) {
            Some(&(0, _)) => {
                fs::remove_file(path).expect("unlink fully-deferred segment");
            }
            Some(&(offset, _)) => {
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .expect("open tail segment");
                file.set_len(offset).expect("truncate past watermark");
                break; // older files hold only lower numbers
            }
            None => break,
        }
    }
}

/// Fabricates the mid-prune crash state from a pre-prune snapshot: the
/// manifest (written first, fsynced) is kept, appends that happened since
/// the snapshot are kept (they were fsynced by the pre-manifest barrier),
/// but the front rewrite and the unlinks are rolled back.
fn undo_prune_file_ops(before: &BTreeMap<PathBuf, Vec<u8>>) {
    for (path, old_bytes) in before {
        match fs::read(path) {
            Ok(now_bytes) => {
                if !now_bytes.starts_with(old_bytes) {
                    // Not an append-extension of the old content: this file
                    // was rewritten by the prune. Roll it back.
                    fs::write(path, old_bytes).expect("restore rewritten segment");
                }
            }
            Err(_) => {
                // Unlinked by the prune: the crash happened before the
                // unlink, so the stale file is still there.
                fs::write(path, old_bytes).expect("restore unlinked segment");
            }
        }
    }
}

/// Asserts the full backend-equivalence bar between the oracle and the
/// recovered ledger: bit-identical blocks, sealed hashes, entry index,
/// and agreeing lookups.
fn assert_equivalent<A: BlockStore, B: BlockStore>(
    oracle: &SelectiveLedger<A>,
    recovered: &SelectiveLedger<B>,
    context: &str,
) {
    let a = oracle.chain();
    let b = recovered.chain();
    assert_eq!(
        a.export_bytes(),
        b.export_bytes(),
        "{context}: live chains are not bit-identical"
    );
    assert_eq!(a.tip_hash(), b.tip_hash(), "{context}: tip hash differs");
    assert!(
        a.iter_sealed()
            .map(|sealed| sealed.hash())
            .eq(b.iter_sealed().map(|sealed| sealed.hash())),
        "{context}: sealed-hash caches differ"
    );
    assert_eq!(
        a.entry_index().iter().collect::<Vec<_>>(),
        b.entry_index().iter().collect::<Vec<_>>(),
        "{context}: entry indexes differ"
    );
    assert_eq!(
        b.entry_index(),
        &b.rebuilt_index(),
        "{context}: recovered index drifted from a full rebuild"
    );
    assert!(
        b.verify_cached_hashes(),
        "{context}: recovered hash cache is stale"
    );
    for (id, _) in a.live_records() {
        assert_eq!(
            b.locate(id).is_some(),
            a.locate(id).is_some(),
            "{context}: lookup disagrees on {id}"
        );
        assert_eq!(
            b.locate(id),
            b.locate_scan(id),
            "{context}: indexed and scan lookups disagree on {id}"
        );
    }
}

/// Runs the crash/restart scenario in `dir` (which is wiped first).
///
/// Drives the oracle and the durable ledger together, fabricates the
/// configured crash state, reopens, re-applies whatever the crash
/// destroyed, asserts bit-identity, then keeps both ledgers running to
/// show the recovered node seals on.
///
/// # Panics
///
/// Panics when any backend-equivalence invariant is violated — this is a
/// test driver, not a production API.
pub fn run_crash_restart(dir: &Path, cfg: &CrashConfig) -> CrashReport {
    let _ = fs::remove_dir_all(dir);
    let key = SigningKey::from_seed([0x5C; 32]);
    let mut counter = 0u64;

    let mut oracle = SelectiveLedger::builder(crash_chain_config()).build();
    let mut durable = SelectiveLedger::builder(crash_chain_config())
        .store_backend::<FileStore>()
        .pipelined_commits(cfg.point == CrashPoint::DeferredCommit)
        .on_disk_with_capacity(dir, cfg.segment_capacity)
        .expect("fresh store opens");

    // Phase 1: identical workload up to the crash window.
    let mut block = 0u64;
    // Durable watermark captured at the crash, when the point pins one.
    let mut watermark: Option<u64> = None;
    for _ in 0..cfg.blocks_before_crash {
        block += 1;
        step(
            &mut oracle,
            &mut durable,
            &key,
            block,
            cfg.entries_per_block,
            &mut counter,
        );
    }

    // Phase 2: fabricate the crash state.
    match cfg.point {
        CrashPoint::MidPush => {
            // Find a step whose final frame is a *plain* block (no marker
            // shift in the same seal), so tearing it cannot touch a frame
            // the prune barrier had already fsynced.
            loop {
                let marker_before = durable.stats().marker;
                block += 1;
                step(
                    &mut oracle,
                    &mut durable,
                    &key,
                    block,
                    cfg.entries_per_block,
                    &mut counter,
                );
                // Only tear a frame the fsync contract allows to be lost:
                // a plain block (no marker shift whose barrier fsynced the
                // tail) that did not fill — and thereby fsync — a segment.
                if durable.stats().marker == marker_before
                    && durable.chain().tip().kind() == BlockKind::Normal
                    && tail_frame_is_unsynced(dir, cfg.segment_capacity)
                {
                    break;
                }
            }
            drop(durable);
            tear_tail_frame(dir);
        }
        CrashPoint::MidPrune => {
            // Step until a seal shifts the marker, snapshotting the files
            // beforehand; then roll back everything the prune did on disk
            // except the (first-written, fsynced) manifest.
            loop {
                let marker_before = durable.stats().marker;
                let files_before = snapshot_segments(dir);
                block += 1;
                step(
                    &mut oracle,
                    &mut durable,
                    &key,
                    block,
                    cfg.entries_per_block,
                    &mut counter,
                );
                if durable.stats().marker > marker_before {
                    drop(durable);
                    undo_prune_file_ops(&files_before);
                    break;
                }
            }
        }
        CrashPoint::DeferredCommit => {
            // Stall the commit stage, then keep sealing: blocks append
            // while their fill fsyncs wait in the queue, so the durable
            // watermark W falls behind the tip. (A prune inside this loop
            // runs the §IV-C barrier and snaps W back to the tip — the
            // loop just continues until a gap of ≥ 2 blocks opens.)
            durable.chain().store().pause_commits(true);
            loop {
                block += 1;
                step(
                    &mut oracle,
                    &mut durable,
                    &key,
                    block,
                    cfg.entries_per_block,
                    &mut counter,
                );
                let tip = durable.chain().tip().number().value();
                let w = durable.chain().store().durable_up_to();
                if let Some(w) = w {
                    if tip >= w.value() + 2 {
                        watermark = Some(w.value());
                        break;
                    }
                }
            }
            // Dropping the ledger joins the worker, which flushes the
            // queue — a clean close loses nothing. The fabrication then
            // rolls the files back to the captured watermark: the state
            // an actual power cut at capture time was allowed to leave.
            drop(durable);
            truncate_past_watermark(dir, watermark.expect("captured"));
        }
        CrashPoint::CleanClose => {
            drop(durable);
        }
    }

    // Phase 3: restart — reopen the damaged directory.
    let mut recovered = SelectiveLedger::builder(crash_chain_config())
        .store_backend::<FileStore>()
        .on_disk(dir)
        .expect("recovery must succeed");

    let oracle_tip = oracle.chain().tip().number().value();
    let recovered_tip = recovered.chain().tip().number().value();
    assert!(
        recovered_tip <= oracle_tip,
        "recovery invented blocks: {recovered_tip} > {oracle_tip}"
    );
    let lost_blocks = oracle_tip - recovered_tip;
    if let Some(watermark) = watermark {
        // The durability boundary is exact in both directions: recovery
        // must reach the watermark (nothing durable may be dropped) and
        // must not pass it (nothing past it was fsynced).
        assert_eq!(
            recovered_tip, watermark,
            "recovery did not land exactly on the durable watermark"
        );
    }
    assert_eq!(
        recovered.chain().marker(),
        oracle.chain().marker(),
        "markers diverged: a durable prune was lost or invented"
    );

    // Every recovered block must be bit-identical to the oracle's copy.
    for recovered_block in recovered.chain().iter() {
        let oracle_block = oracle
            .chain()
            .get(recovered_block.number())
            .expect("oracle holds every live recovered block");
        assert_eq!(
            oracle_block,
            recovered_block,
            "recovered block {} differs from the oracle",
            recovered_block.number()
        );
    }

    // Phase 4: converge — re-apply what the crash destroyed (in a real
    // deployment the peers' sync responses provide these; summaries are
    // re-derived locally and must never come from the wire).
    let mut reapplied = 0u64;
    let mut next = recovered.chain().tip().number().next();
    while next.value() <= oracle_tip {
        let lost = oracle
            .chain()
            .get(next)
            .expect("lost tail blocks are still live on the oracle");
        // `next` can never be a summary block: recovery derives a due Σ at
        // open, and apply_block derives one after every applied block.
        assert_ne!(
            lost.kind(),
            BlockKind::Summary,
            "recovery left summary slot {next} unfilled"
        );
        recovered
            .apply_block(lost.block().clone())
            .expect("oracle blocks re-apply cleanly");
        reapplied += 1;
        next = recovered.chain().tip().number().next();
    }
    assert_equivalent(&oracle, &recovered, "after convergence");

    // Phase 5: resume — the recovered ledger seals on, staying identical.
    for _ in 0..cfg.blocks_after_recovery {
        block += 1;
        step(
            &mut oracle,
            &mut recovered,
            &key,
            block,
            cfg.entries_per_block,
            &mut counter,
        );
    }
    assert_equivalent(&oracle, &recovered, "after resumed workload");

    CrashReport {
        point: cfg.point,
        oracle_tip,
        recovered_tip,
        lost_blocks,
        reapplied_blocks: reapplied,
        final_marker: recovered.chain().marker().value(),
        final_live_blocks: recovered.chain().len(),
    }
}

/// How an injected payload corruption was caught.
///
/// The fault model differs from the crash points above: a crash loses
/// *suffixes* the fsync contract allows to be lost, while tampering flips
/// a byte inside **committed** data. Recovery must therefore not succeed
/// silently — every outcome below is a detection, and
/// [`run_tamper_payload`] panics if none of them fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperDetection {
    /// The store refused to open (frame undecodable / manifest corrupt).
    OpenRejected(String),
    /// The store opened but the incremental commitment audit flagged the
    /// block at this number (its decoded body no longer matches the
    /// header's payload root, or a link broke).
    BlockFlagged(u64),
    /// The flip hit a frame length prefix, which is indistinguishable from
    /// a torn tail: the store opened short of the expected tip.
    TailTruncated {
        /// Tip after reopening.
        recovered_tip: u64,
        /// Tip before the tamper.
        expected_tip: u64,
    },
    /// The flip hit the tip block's header in a field no local rule
    /// constrains (timestamp, seal — only the tip has no successor whose
    /// `prev_hash` pins it): caught by comparing against the
    /// quorum-attested status-quo tip hash (§V-B4).
    TipHashDiverged,
}

/// Outcome of one [`run_tamper_payload`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperReport {
    /// The segment file that was corrupted.
    pub segment: String,
    /// Byte offset of the flip within that file.
    pub offset: u64,
    /// How the corruption surfaced.
    pub detection: TamperDetection,
}

/// Tiny deterministic generator (xorshift64*) — the sim never reads OS
/// randomness; every run is reproducible from the seed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The `TamperPayload` fault: drives a durable ledger, closes it cleanly,
/// flips **one seed-chosen byte** inside a committed segment file, and
/// asserts the corruption cannot go unnoticed — the reopen fails, the
/// incremental commitment audit ([`validate_store_incremental`]) flags the
/// exact block, or (length-prefix hits only) the tail comes back short.
///
/// # Panics
///
/// Panics when the tampered store opens full-length and passes the audit —
/// silent undetected corruption, the one forbidden outcome.
pub fn run_tamper_payload(dir: &Path, cfg: &CrashConfig, seed: u64) -> TamperReport {
    let _ = fs::remove_dir_all(dir);
    let key = SigningKey::from_seed([0x7A; 32]);
    let mut counter = 0u64;

    let mut durable = SelectiveLedger::builder(crash_chain_config())
        .store_backend::<FileStore>()
        .on_disk_with_capacity(dir, cfg.segment_capacity)
        .expect("fresh store opens");
    for block in 1..=cfg.blocks_before_crash {
        let ts = Timestamp(block * 10);
        for _ in 0..cfg.entries_per_block {
            counter += 1;
            durable
                .submit_entry(workload_entry(&key, counter))
                .expect("durable accepts");
        }
        durable.seal_block(ts).expect("monotone time");
    }
    let expected_tip = durable.chain().tip().number().value();
    let expected_tip_hash = durable.chain().tip_hash();
    drop(durable);

    // Flip one byte, position drawn from the seed over all segment bytes.
    let files = snapshot_segments(dir);
    let total: u64 = files.values().map(|b| b.len() as u64).sum();
    assert!(total > 0, "workload produced no segment bytes");
    let mut state = seed | 1;
    let mut target = xorshift(&mut state) % total;
    let (path, offset) = files
        .iter()
        .find_map(|(path, bytes)| {
            if target < bytes.len() as u64 {
                Some((path.clone(), target))
            } else {
                target -= bytes.len() as u64;
                None
            }
        })
        .expect("target is within total");
    let mut bytes = files[&path].clone();
    bytes[offset as usize] ^= 1 << (xorshift(&mut state) % 8);
    fs::write(&path, &bytes).expect("write tampered segment");
    let segment = path
        .file_name()
        .and_then(|n| n.to_str())
        .expect("segment name")
        .to_string();

    // Reopen and audit: one of the three detections must fire.
    let detection = match FileStore::open(dir) {
        Err(err) => TamperDetection::OpenRejected(err.to_string()),
        Ok(store) => match validate_store_incremental(&store) {
            Err(err) => {
                let flagged = match err {
                    seldel_chain::ChainError::PayloadMismatch { number }
                    | seldel_chain::ChainError::PrevHashMismatch { number }
                    | seldel_chain::ChainError::TimestampRegression { number }
                    | seldel_chain::ChainError::SummaryTimestampMismatch { number }
                    | seldel_chain::ChainError::TombstonesUnsorted { number }
                    | seldel_chain::ChainError::GenesisMisplaced { number } => number.value(),
                    seldel_chain::ChainError::NonContiguousNumber { found, .. } => found.value(),
                    other => panic!("unexpected audit error after tamper: {other}"),
                };
                TamperDetection::BlockFlagged(flagged)
            }
            Ok(_) => {
                let tip = store.last().expect("audited store is non-empty");
                let recovered_tip = tip.block().number().value();
                if recovered_tip < expected_tip {
                    TamperDetection::TailTruncated {
                        recovered_tip,
                        expected_tip,
                    }
                } else {
                    assert!(
                        tip.hash() != expected_tip_hash,
                        "tampered byte {offset} of {segment} went completely undetected"
                    );
                    TamperDetection::TipHashDiverged
                }
            }
        },
    };
    TamperReport {
        segment,
        offset,
        detection,
    }
}

/// Runs every crash point in subdirectories of `base`, returning the
/// reports in order (mid-push, mid-prune, deferred-commit, clean-close).
pub fn run_crash_matrix(base: &Path, cfg: &CrashConfig) -> Vec<CrashReport> {
    [
        CrashPoint::MidPush,
        CrashPoint::MidPrune,
        CrashPoint::DeferredCommit,
        CrashPoint::CleanClose,
    ]
    .into_iter()
    .map(|point| {
        let mut cfg = cfg.clone();
        cfg.point = point;
        let dir = base.join(format!("{point}"));
        let report = run_crash_restart(&dir, &cfg);
        let _ = fs::remove_dir_all(&dir);
        report
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::testutil::ScratchDir;

    #[test]
    fn crash_mid_push_recovers_to_oracle_identity() {
        let dir = ScratchDir::new("midpush");
        let report = run_crash_restart(
            dir.path(),
            &CrashConfig {
                point: CrashPoint::MidPush,
                ..Default::default()
            },
        );
        // The torn frame destroyed at least the final block.
        assert!(report.lost_blocks >= 1, "{report:?}");
        assert!(report.reapplied_blocks >= 1);
    }

    #[test]
    fn crash_mid_prune_loses_nothing() {
        let dir = ScratchDir::new("midprune");
        let report = run_crash_restart(
            dir.path(),
            &CrashConfig {
                point: CrashPoint::MidPrune,
                ..Default::default()
            },
        );
        // The Σ carrying the pruned records was fsynced before the
        // manifest, so a crash inside the prune destroys no blocks.
        assert_eq!(report.lost_blocks, 0, "{report:?}");
        assert_eq!(report.reapplied_blocks, 0);
    }

    #[test]
    fn crash_with_deferred_commits_recovers_exactly_to_the_watermark() {
        let dir = ScratchDir::new("deferred");
        let report = run_crash_restart(
            dir.path(),
            &CrashConfig {
                point: CrashPoint::DeferredCommit,
                ..Default::default()
            },
        );
        // The stalled commit stage owed ≥ 2 blocks at the cut, and the
        // in-driver assertion already pinned recovered_tip == watermark.
        assert!(report.lost_blocks >= 2, "{report:?}");
        assert!(report.reapplied_blocks >= 1);
    }

    #[test]
    fn tamper_payload_is_always_detected() {
        let dir = ScratchDir::new("tamper");
        for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
            // run_tamper_payload panics on silent undetected corruption;
            // each seed picks a different byte to flip.
            let report = run_tamper_payload(dir.path(), &CrashConfig::default(), seed);
            assert!(!report.segment.is_empty(), "{report:?}");
        }
    }

    #[test]
    fn clean_close_is_lossless() {
        let dir = ScratchDir::new("clean");
        let report = run_crash_restart(
            dir.path(),
            &CrashConfig {
                point: CrashPoint::CleanClose,
                blocks_before_crash: 40,
                ..Default::default()
            },
        );
        assert_eq!(report.lost_blocks, 0, "{report:?}");
        assert_eq!(report.reapplied_blocks, 0);
    }
}

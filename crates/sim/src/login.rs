//! The paper's evaluation scenario (§V): login auditing with users ALPHA,
//! BRAVO and CHARLIE, a summary block every third block, and BRAVO's
//! deletion request — the exact storyline of Figs. 6, 7 and 8.

use std::collections::BTreeMap;

use seldel_chain::render::render_chain;
use seldel_chain::{BlockNumber, Entry, EntryId, EntryNumber, Timestamp};
use seldel_codec::schema::SchemaRegistry;
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, CoreError, SelectiveLedger};
use seldel_crypto::{SigningKey, VerifyingKey};

/// The cast of the paper's test setup.
pub const USERS: [&str; 3] = ["ALPHA", "BRAVO", "CHARLIE"];

/// The YAML schema of a login entry (the paper specifies entry structure
/// "beforehand by a YAML schema").
pub const LOGIN_SCHEMA_YAML: &str = "\
record: login
fields:
  user: str
  terminal: u64
";

/// Driver for the login-audit scenario.
#[derive(Debug, Clone)]
pub struct LoginAudit {
    ledger: SelectiveLedger,
    keys: BTreeMap<&'static str, SigningKey>,
    now: Timestamp,
}

impl Default for LoginAudit {
    fn default() -> Self {
        Self::paper_setup()
    }
}

impl LoginAudit {
    /// Builds the paper's test setup: l = 3, l_max = 6 with full
    /// compaction, login schema registered, one key per user.
    pub fn paper_setup() -> LoginAudit {
        let mut schemas = SchemaRegistry::new();
        schemas
            .register_yaml(LOGIN_SCHEMA_YAML)
            .expect("static schema parses");
        let ledger = SelectiveLedger::builder(ChainConfig::paper_evaluation())
            .schemas(schemas)
            .build();
        let keys = USERS
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, SigningKey::from_seed([0xA0 + i as u8; 32])))
            .collect();
        LoginAudit {
            ledger,
            keys,
            now: Timestamp(0),
        }
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &SelectiveLedger {
        &self.ledger
    }

    /// Mutable ledger access for extended experiments.
    pub fn ledger_mut(&mut self) -> &mut SelectiveLedger {
        &mut self.ledger
    }

    /// The signing key of a user.
    ///
    /// # Panics
    ///
    /// Panics for unknown user names.
    pub fn key_of(&self, user: &str) -> &SigningKey {
        self.keys
            .get(user)
            .unwrap_or_else(|| panic!("unknown user {user:?}"))
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Records a login event into the mempool.
    ///
    /// # Errors
    ///
    /// Propagates ledger intake errors (schema, signature).
    pub fn login(&mut self, user: &str, terminal: u64) -> Result<(), CoreError> {
        let key = self.key_of(user).clone();
        self.ledger.submit_entry(Entry::sign_data(
            &key,
            DataRecord::new("login")
                .with("user", user)
                .with("terminal", terminal),
        ))
    }

    /// Submits a deletion request for `target` on behalf of `user`.
    ///
    /// # Errors
    ///
    /// Propagates authorisation/cohesion failures.
    pub fn request_deletion(&mut self, user: &str, target: EntryId) -> Result<(), CoreError> {
        let key = self.key_of(user).clone();
        self.ledger.request_deletion(&key, target, "user request")
    }

    /// Seals the next block (advancing virtual time by 10 ms per block,
    /// like the test tables in the paper's figures).
    ///
    /// # Errors
    ///
    /// Propagates sealing errors.
    pub fn seal(&mut self) -> Result<BlockNumber, CoreError> {
        self.now += 10;
        self.ledger.seal_block(self.now)
    }

    /// Renders the chain in the Fig. 6–8 console style with user names.
    pub fn render(&self) -> String {
        let names: BTreeMap<[u8; 32], String> = self
            .keys
            .iter()
            .map(|(name, key)| (key.verifying_key().to_bytes(), name.to_string()))
            .collect();
        let resolver = move |key: &VerifyingKey| names.get(&key.to_bytes()).cloned();
        render_chain(self.ledger.chain(), &resolver)
    }

    /// Plays the scenario up to the paper's Fig. 6: logins by every user in
    /// blocks 1, 3 and 4; summary blocks Σ2 and Σ5 empty; nothing deleted.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors (none occur in the scripted run).
    pub fn run_fig6(&mut self) -> Result<(), CoreError> {
        for block in [1u64, 3, 4] {
            for (i, user) in USERS.iter().enumerate() {
                self.login(user, block * 10 + i as u64)?;
            }
            self.seal()?;
        }
        Ok(())
    }

    /// Continues to Fig. 7: BRAVO requests deletion of block 3 entry 1 in
    /// block 6; at Σ8 the first two sequences merge into the summary block
    /// without the deleted entry and the marker shifts to 6.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors.
    pub fn run_fig7(&mut self) -> Result<(), CoreError> {
        let target = EntryId::new(BlockNumber(3), EntryNumber(1));
        self.request_deletion("BRAVO", target)?;
        self.seal()?; // block 6 (carries the deletion request)
        self.seal()?; // block 7 (idle) → Σ8 merges and the marker shifts
        Ok(())
    }

    /// Continues one merge cycle ahead to Fig. 8: by Σ14 the deletion
    /// request itself is no longer stored anywhere in the live chain.
    ///
    /// # Errors
    ///
    /// Propagates ledger errors.
    pub fn run_fig8(&mut self) -> Result<(), CoreError> {
        for _ in 0..4 {
            self.seal()?; // blocks 9,10 → Σ11; blocks 12,13 → Σ14 merge
        }
        Ok(())
    }

    /// The id of BRAVO's entry targeted in Fig. 7.
    pub fn bravo_target() -> EntryId {
        EntryId::new(BlockNumber(3), EntryNumber(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seldel_chain::BlockKind;

    #[test]
    fn fig6_state_matches_paper() {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        let chain = sim.ledger().chain();
        // Blocks 0..=5; Σ2 and Σ5 empty; marker still 0.
        assert_eq!(chain.marker(), BlockNumber(0));
        assert_eq!(chain.tip().number(), BlockNumber(5));
        for n in [2u64, 5] {
            let block = chain.get(BlockNumber(n)).unwrap();
            assert_eq!(block.kind(), BlockKind::Summary);
            assert!(block.summary_records().is_empty(), "Σ{n} must be empty");
        }
        for n in [1u64, 3, 4] {
            assert_eq!(chain.get(BlockNumber(n)).unwrap().entries().len(), 3);
        }
        let rendered = sim.render();
        assert!(rendered.contains("DEADB"), "{rendered}");
        assert!(rendered.contains("user=ALPHA"));
        assert!(rendered.contains("K BRAVO"));
    }

    #[test]
    fn fig7_deletion_and_double_merge() {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        sim.run_fig7().unwrap();
        let chain = sim.ledger().chain();
        // Marker shifted to 6; blocks before 6 deleted.
        assert_eq!(chain.marker(), BlockNumber(6));
        assert!(chain.get(BlockNumber(5)).is_none());
        // Σ8 carries the merged records minus BRAVO's deleted entry:
        // blocks 1,3,4 × 3 entries − 1 deleted = 8 records.
        let summary = chain.get(BlockNumber(8)).unwrap();
        assert_eq!(summary.kind(), BlockKind::Summary);
        assert_eq!(summary.summary_records().len(), 8);
        let target = LoginAudit::bravo_target();
        assert!(summary
            .summary_records()
            .iter()
            .all(|r| r.origin() != target));
        // Original ids preserved (Fig. 4): records from block 1 keep α = 1.
        assert!(summary
            .summary_records()
            .iter()
            .any(|r| r.origin().block == BlockNumber(1)));
        // The deletion request entry itself is in block 6 and still live.
        assert_eq!(chain.get(BlockNumber(6)).unwrap().entries().len(), 1);
        // Physically deleted.
        assert!(sim.ledger().record(target).is_none());
        // ALPHA's neighbour entry survived.
        assert!(sim
            .ledger()
            .record(EntryId::new(BlockNumber(3), EntryNumber(0)))
            .is_some());
    }

    #[test]
    fn fig8_deletion_request_disappears() {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        sim.run_fig7().unwrap();
        sim.run_fig8().unwrap();
        let chain = sim.ledger().chain();
        assert_eq!(chain.marker(), BlockNumber(12));
        // No block in the live chain carries a deletion request anymore,
        // and no summary record refers to one.
        for block in chain.iter() {
            assert!(block.entries().iter().all(|e| !e.is_delete_request()));
        }
        // The 8 surviving records are still reachable via Σ14.
        assert_eq!(chain.record_count(), 8);
        // BRAVO's other logins (blocks 1 and 4) survived both merges.
        assert!(sim
            .ledger()
            .record(EntryId::new(BlockNumber(1), EntryNumber(1)))
            .is_some());
        assert!(sim
            .ledger()
            .record(EntryId::new(BlockNumber(4), EntryNumber(1)))
            .is_some());
    }

    #[test]
    fn render_marks_summary_blocks_with_s() {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        let rendered = sim.render();
        assert!(rendered.contains("\nS2; "), "{rendered}");
        assert!(rendered.contains("\nS5; "), "{rendered}");
        assert!(rendered.contains("(empty)"));
    }

    #[test]
    fn foreign_deletion_blocked_in_scenario() {
        let mut sim = LoginAudit::paper_setup();
        sim.run_fig6().unwrap();
        // CHARLIE cannot delete BRAVO's entry.
        let err = sim
            .request_deletion("CHARLIE", LoginAudit::bravo_target())
            .unwrap_err();
        assert!(matches!(err, CoreError::NotAuthorized(_)));
    }
}

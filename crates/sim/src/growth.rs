//! Experiment E1 — bounded chain growth (the paper's core scalability
//! claim, §I "Growth of the blockchain" / §V-A "Data Reduction").
//!
//! Feeds an identical workload to a [`SelectiveLedger`] and a
//! [`BaselineChain`] and samples live size over time; also sweeps l_max.

use seldel_chain::{BaselineChain, BlockStore, Entry, Timestamp};
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, RetentionPolicy, RetireMode, SelectiveLedger};
use seldel_crypto::SigningKey;

/// Growth experiment parameters.
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// Number of payload blocks to append.
    pub blocks: u64,
    /// Entries per payload block.
    pub entries_per_block: usize,
    /// Sequence length l.
    pub sequence_length: u64,
    /// Retention limit l_max.
    pub l_max: u64,
    /// Record a sample every this many payload blocks.
    pub sample_every: u64,
    /// Extra payload bytes per entry (realistic record sizes).
    pub payload_bytes: usize,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            blocks: 300,
            entries_per_block: 4,
            sequence_length: 5,
            l_max: 30,
            sample_every: 10,
            payload_bytes: 64,
        }
    }
}

/// One sample of the growth series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthSample {
    /// Payload blocks appended so far.
    pub appended: u64,
    /// Selective chain: live blocks.
    pub selective_blocks: u64,
    /// Selective chain: live bytes.
    pub selective_bytes: u64,
    /// Selective chain: live data records.
    pub selective_records: u64,
    /// Baseline chain: blocks.
    pub baseline_blocks: u64,
    /// Baseline chain: bytes.
    pub baseline_bytes: u64,
}

fn workload_entry(key: &SigningKey, n: u64, payload_bytes: usize) -> Entry {
    let filler: String = "x".repeat(payload_bytes);
    Entry::sign_data(
        key,
        DataRecord::new("log")
            .with("n", n)
            .with("payload", filler.as_str()),
    )
}

/// Ledger configuration used by the growth run.
pub fn growth_chain_config(cfg: &GrowthConfig) -> ChainConfig {
    ChainConfig {
        sequence_length: cfg.sequence_length,
        retention: RetentionPolicy {
            max_live_blocks: Some(cfg.l_max),
            min_live_blocks: cfg.sequence_length,
            min_live_summaries: 1,
            min_timespan: None,
            mode: RetireMode::MinimumNeeded,
        },
        ..Default::default()
    }
}

/// Runs the growth experiment, returning the sampled series.
///
/// The selective ledger runs with TTL'd entries? No — plain permanent
/// entries: the bound comes from summarisation compacting *block overhead*,
/// while records are carried forward. To demonstrate deletion-driven
/// reduction the workload marks a slice of entries as temporary: every 4th
/// entry expires after `ttl_ms`.
pub fn run_growth(cfg: &GrowthConfig) -> Vec<GrowthSample> {
    run_growth_in::<seldel_chain::MemStore>(cfg).1
}

/// [`run_growth`] on an explicit storage backend, also returning the final
/// ledger so callers can compare backends (tip hashes, export bytes).
pub fn run_growth_in<S: BlockStore>(cfg: &GrowthConfig) -> (SelectiveLedger<S>, Vec<GrowthSample>) {
    let key = SigningKey::from_seed([0x61; 32]);
    let mut selective = SelectiveLedger::builder(growth_chain_config(cfg))
        .store_backend::<S>()
        .build();
    let mut baseline = BaselineChain::new("baseline", Timestamp(0));
    let mut samples = Vec::new();
    let mut counter = 0u64;

    for b in 1..=cfg.blocks {
        let ts = Timestamp(b * 10);
        let mut batch = Vec::with_capacity(cfg.entries_per_block);
        for _ in 0..cfg.entries_per_block {
            counter += 1;
            // Every 4th entry is temporary: expires two sequences later.
            let entry = if counter.is_multiple_of(4) {
                let expiry = seldel_chain::Expiry::AtTimestamp(Timestamp(
                    ts.millis() + cfg.sequence_length * 20,
                ));
                Entry::sign_data_with(
                    &key,
                    DataRecord::new("log")
                        .with("n", counter)
                        .with("payload", "t".repeat(cfg.payload_bytes).as_str()),
                    Some(expiry),
                    vec![],
                )
            } else {
                workload_entry(&key, counter, cfg.payload_bytes)
            };
            batch.push(entry);
        }
        for entry in &batch {
            selective
                .submit_entry(entry.clone())
                .expect("workload entries are valid");
        }
        selective.seal_block(ts).expect("monotone time");
        baseline.append(ts, batch).expect("monotone time");

        if b % cfg.sample_every == 0 || b == cfg.blocks {
            let stats = selective.stats();
            samples.push(GrowthSample {
                appended: b,
                selective_blocks: stats.live_blocks,
                selective_bytes: stats.live_bytes,
                selective_records: stats.live_records,
                baseline_blocks: baseline.len(),
                baseline_bytes: baseline.total_byte_size(),
            });
        }
    }
    (selective, samples)
}

/// Sweeps l_max, returning `(l_max, final live blocks, final live bytes)`.
pub fn sweep_l_max(blocks: u64, l_maxes: &[u64]) -> Vec<(u64, u64, u64)> {
    l_maxes
        .iter()
        .map(|&l_max| {
            let cfg = GrowthConfig {
                blocks,
                l_max,
                ..Default::default()
            };
            let last = *run_growth(&cfg).last().expect("at least one sample");
            (l_max, last.selective_blocks, last.selective_bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_chain_stays_bounded_baseline_grows() {
        let cfg = GrowthConfig {
            blocks: 120,
            ..Default::default()
        };
        let samples = run_growth(&cfg);
        let last = samples.last().unwrap();
        // Baseline grows linearly with appended blocks.
        assert_eq!(last.baseline_blocks, cfg.blocks + 1);
        // Selective stays within l_max + one sequence of slack.
        assert!(
            last.selective_blocks <= cfg.l_max + cfg.sequence_length,
            "live = {}",
            last.selective_blocks
        );
        // And is much smaller than the baseline in blocks.
        assert!(last.selective_blocks * 2 < last.baseline_blocks);
    }

    #[test]
    fn temporary_entries_bound_record_growth() {
        let cfg = GrowthConfig {
            blocks: 150,
            ..Default::default()
        };
        let samples = run_growth(&cfg);
        let last = samples.last().unwrap();
        let appended_records = cfg.blocks * cfg.entries_per_block as u64;
        // A quarter of the records expire; live records must be below the
        // total appended count.
        assert!(last.selective_records < appended_records);
    }

    #[test]
    fn larger_l_max_keeps_more_blocks() {
        let sweep = sweep_l_max(150, &[20, 40, 80]);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].1 <= sweep[1].1);
        assert!(sweep[1].1 <= sweep[2].1);
    }

    #[test]
    fn storage_backends_produce_identical_chains() {
        // I2 across backends: the same workload on MemStore and SegStore
        // yields bit-identical live chains and identical samples.
        use seldel_chain::{MemStore, SegStore};
        let cfg = GrowthConfig {
            blocks: 90,
            ..Default::default()
        };
        let (mem, mem_samples) = run_growth_in::<MemStore>(&cfg);
        let (seg, seg_samples) = run_growth_in::<SegStore>(&cfg);
        assert_eq!(mem_samples, seg_samples);
        assert_eq!(mem.chain().tip_hash(), seg.chain().tip_hash());
        assert_eq!(mem.chain().export_bytes(), seg.chain().export_bytes());
        assert_eq!(
            mem.chain().entry_index().iter().collect::<Vec<_>>(),
            seg.chain().entry_index().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn samples_are_monotone_in_appended() {
        let samples = run_growth(&GrowthConfig {
            blocks: 60,
            ..Default::default()
        });
        for pair in samples.windows(2) {
            assert!(pair[0].appended < pair[1].appended);
        }
    }
}

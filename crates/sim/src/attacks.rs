//! Attack simulations (Fig. 9 and §V-B).
//!
//! * **51 % rewrite race** — an attacker with hash-power fraction `q`
//!   secretly re-mines history. Without summary anchoring, rewriting the
//!   newest summary block suffices to forge pruned history (depth 1);
//!   with the Fig. 9 anchor, "each entry that is longer than lβ/2 in the
//!   blockchain has at least lβ/2 confirmations at each time", so the
//!   attacker "has to run the attack for a\[t\] least lβ/2 number of
//!   blocks". The Monte-Carlo race quantifies how much that depth costs.
//! * **Eclipse** — a client consulting k anchors accepts the majority
//!   status quo; the attack succeeds when attacker-controlled anchors form
//!   that majority (§V-B4).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the 51 % rewrite race.
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    /// Attacker's fraction of block-creation power (0..1).
    pub attacker_fraction: f64,
    /// Blocks the attacker must redo (1 without anchoring; lβ/2 with).
    pub depth: u64,
    /// Monte-Carlo trials.
    pub trials: u32,
    /// Abort a trial once the honest lead reaches this many blocks.
    pub give_up_lead: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            attacker_fraction: 0.3,
            depth: 6,
            trials: 10_000,
            give_up_lead: 200,
            seed: 0x51AC,
        }
    }
}

/// Result of a Monte-Carlo race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceResult {
    /// Fraction of trials where the attacker caught up.
    pub success_rate: f64,
    /// Mean blocks the attacker produced per successful trial.
    pub mean_attacker_blocks: f64,
    /// Trials run.
    pub trials: u32,
}

/// Analytic catch-up probability `(q/p)^z` for q < p (gambler's ruin).
pub fn analytic_catch_up(q: f64, depth: u64) -> f64 {
    if q <= 0.0 {
        return 0.0;
    }
    if q >= 0.5 {
        return 1.0;
    }
    let p = 1.0 - q;
    (q / p).powi(depth as i32)
}

/// Simulates the rewrite race: the attacker starts `depth` blocks behind
/// and wins when the deficit reaches zero before the honest lead hits the
/// give-up bound.
pub fn simulate_race(cfg: &RaceConfig) -> RaceResult {
    assert!(
        (0.0..=1.0).contains(&cfg.attacker_fraction),
        "attacker fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut successes = 0u32;
    let mut attacker_blocks_on_success = 0u64;

    for _ in 0..cfg.trials {
        let mut deficit = cfg.depth as i64;
        let mut attacker_blocks = 0u64;
        loop {
            if rng.random_range(0.0..1.0) < cfg.attacker_fraction {
                deficit -= 1;
                attacker_blocks += 1;
            } else {
                deficit += 1;
            }
            if deficit <= 0 {
                successes += 1;
                attacker_blocks_on_success += attacker_blocks;
                break;
            }
            if deficit >= cfg.give_up_lead as i64 {
                break;
            }
        }
    }

    RaceResult {
        success_rate: successes as f64 / cfg.trials as f64,
        mean_attacker_blocks: if successes > 0 {
            attacker_blocks_on_success as f64 / successes as f64
        } else {
            0.0
        },
        trials: cfg.trials,
    }
}

/// The Fig. 9 comparison: success probability of rewriting pruned history
/// without anchoring (depth 1) versus with the middle-sequence anchor
/// (depth lβ/2), for a live chain of length `l_beta`.
pub fn compare_anchoring(
    l_beta: u64,
    attacker_fraction: f64,
    trials: u32,
    seed: u64,
) -> (RaceResult, RaceResult) {
    let without = simulate_race(&RaceConfig {
        attacker_fraction,
        depth: 1,
        trials,
        seed,
        ..Default::default()
    });
    let with = simulate_race(&RaceConfig {
        attacker_fraction,
        depth: (l_beta / 2).max(1),
        trials,
        seed: seed ^ 0xFFFF,
        ..Default::default()
    });
    (without, with)
}

/// Parameters of the eclipse experiment.
#[derive(Debug, Clone, Copy)]
pub struct EclipseConfig {
    /// Total anchor nodes.
    pub anchors: usize,
    /// Anchors controlled by the attacker.
    pub controlled: usize,
    /// Anchors a client consults per status-quo check.
    pub consulted: usize,
    /// Monte-Carlo trials.
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EclipseConfig {
    fn default() -> Self {
        EclipseConfig {
            anchors: 10,
            controlled: 3,
            consulted: 5,
            trials: 20_000,
            seed: 0xEC11,
        }
    }
}

/// Probability that a uniformly chosen consultation set has an
/// attacker-controlled majority.
pub fn eclipse_success_rate(cfg: &EclipseConfig) -> f64 {
    assert!(
        cfg.consulted <= cfg.anchors,
        "cannot consult more anchors than exist"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut successes = 0u32;
    let mut pool: Vec<usize> = (0..cfg.anchors).collect();
    for _ in 0..cfg.trials {
        // Partial Fisher-Yates to draw `consulted` anchors.
        for i in 0..cfg.consulted {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        let controlled_in_sample = pool[..cfg.consulted]
            .iter()
            .filter(|&&a| a < cfg.controlled)
            .count();
        if controlled_in_sample * 2 > cfg.consulted {
            successes += 1;
        }
    }
    successes as f64 / cfg.trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_matches_analytic_probability() {
        for q in [0.1, 0.25, 0.4] {
            for depth in [1u64, 3, 6] {
                let result = simulate_race(&RaceConfig {
                    attacker_fraction: q,
                    depth,
                    trials: 20_000,
                    // Catch-up from 60 behind at q ≤ 0.4 is ≤ (q/p)^60 ≈ 0;
                    // the tight bound keeps the walk short.
                    give_up_lead: 60,
                    ..Default::default()
                });
                let expected = analytic_catch_up(q, depth);
                assert!(
                    (result.success_rate - expected).abs() < 0.02,
                    "q={q} z={depth}: simulated {} vs analytic {expected}",
                    result.success_rate
                );
            }
        }
    }

    #[test]
    fn majority_attacker_always_wins() {
        let result = simulate_race(&RaceConfig {
            attacker_fraction: 0.6,
            depth: 10,
            trials: 2_000,
            ..Default::default()
        });
        assert!(result.success_rate > 0.95);
    }

    #[test]
    fn anchoring_makes_attack_exponentially_harder() {
        let (without, with) = compare_anchoring(24, 0.3, 20_000, 7);
        // Depth 1 attack succeeds often (q/p ≈ 0.43).
        assert!(without.success_rate > 0.3);
        // Depth 12 is nearly hopeless ((q/p)^12 ≈ 4e-5).
        assert!(with.success_rate < 0.01);
        assert!(with.success_rate < without.success_rate / 10.0);
    }

    #[test]
    fn successful_attacks_cost_at_least_depth_blocks() {
        let result = simulate_race(&RaceConfig {
            attacker_fraction: 0.45,
            depth: 8,
            trials: 5_000,
            ..Default::default()
        });
        if result.success_rate > 0.0 {
            assert!(result.mean_attacker_blocks >= 8.0);
        }
    }

    #[test]
    fn analytic_edge_cases() {
        assert_eq!(analytic_catch_up(0.0, 5), 0.0);
        assert_eq!(analytic_catch_up(0.5, 5), 1.0);
        assert_eq!(analytic_catch_up(0.7, 3), 1.0);
        assert!(analytic_catch_up(0.25, 6) < 0.002);
    }

    #[test]
    fn eclipse_worsens_with_more_controlled_anchors() {
        let few = eclipse_success_rate(&EclipseConfig {
            controlled: 2,
            ..Default::default()
        });
        let many = eclipse_success_rate(&EclipseConfig {
            controlled: 6,
            ..Default::default()
        });
        assert!(few < many, "{few} vs {many}");
        assert!(few < 0.2);
        assert!(many > 0.5);
    }

    #[test]
    fn eclipse_zero_and_total_control() {
        let none = eclipse_success_rate(&EclipseConfig {
            controlled: 0,
            ..Default::default()
        });
        assert_eq!(none, 0.0);
        let all = eclipse_success_rate(&EclipseConfig {
            controlled: 10,
            ..Default::default()
        });
        assert_eq!(all, 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot consult")]
    fn eclipse_rejects_oversized_sample() {
        eclipse_success_rate(&EclipseConfig {
            consulted: 11,
            ..Default::default()
        });
    }

    #[test]
    fn race_deterministic_per_seed() {
        let cfg = RaceConfig {
            trials: 1_000,
            ..Default::default()
        };
        assert_eq!(simulate_race(&cfg), simulate_race(&cfg));
    }
}

//! Workloads, attack simulations and experiment drivers reproducing the
//! paper's evaluation (§V) and threat discussion (§V-B).
//!
//! * [`login`] — the Fig. 6–8 login-audit scenario (ALPHA/BRAVO/CHARLIE).
//! * [`token`] — account tokens: cohesion-guarded history, lost-coin
//!   recovery (§V-A "Recovery").
//! * [`supply`] — Industry-4.0 product lifecycle with best-before TTL.
//! * [`growth`] — experiment E1: bounded growth vs the baseline chain.
//! * [`latency`] — experiment E2: delayed-deletion latency distributions.
//! * [`attacks`] — Fig. 9's 51 % race ± anchoring, eclipse quantification.
//! * [`crash`] — experiment E7: crash/restart of the durable `FileStore`
//!   backend against a never-closed `MemStore` oracle.
//! * [`tenants`] — experiment E9: the multi-tenant workload (Zipf-skewed
//!   authors, mixed insert/delete/query) behind the sharded query &
//!   intake subsystem's benchmarks and fairness tests.
//! * [`metrics`] — summary statistics for the harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod crash;
pub mod growth;
pub mod latency;
pub mod login;
pub mod metrics;
pub mod supply;
pub mod tenants;
pub mod token;

pub use attacks::{
    analytic_catch_up, compare_anchoring, eclipse_success_rate, simulate_race, EclipseConfig,
    RaceConfig, RaceResult,
};
pub use crash::{
    crash_chain_config, run_crash_matrix, run_crash_restart, run_tamper_payload, CrashConfig,
    CrashPoint, CrashReport, TamperDetection, TamperReport,
};
pub use growth::{run_growth, run_growth_in, sweep_l_max, GrowthConfig, GrowthSample};
pub use latency::{mean_latency_blocks, run_latency, LatencyConfig, LatencySample};
pub use login::{LoginAudit, LOGIN_SCHEMA_YAML, USERS};
pub use metrics::{mean, percentile, stddev, Summary};
pub use supply::{SupplyChain, PRODUCT_SCHEMA_YAML};
pub use tenants::{
    drive_multi_tenant, run_multi_tenant, run_multi_tenant_in, tenant_chain_config, TenantConfig,
    TenantReport, ZipfSampler,
};
pub use token::{TokenError, TokenLedger, TOKEN_SCHEMA_YAML};

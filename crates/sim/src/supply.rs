//! Industry-4.0 / product-lifecycle workload (the paper's closing use
//! cases): products are tracked along the supply chain, and "as soon as the
//! minimum best-before date has been exceeded … the new technology can be
//! used to automatically clean up the blockchain" — modelled with the
//! temporary-entry expiry of §IV-D4.

use std::collections::BTreeMap;

use seldel_chain::{Entry, EntryId, Expiry, Timestamp};
use seldel_codec::schema::SchemaRegistry;
use seldel_codec::DataRecord;
use seldel_core::{ChainConfig, CoreError, SelectiveLedger};
use seldel_crypto::SigningKey;

/// YAML schema for product lifecycle records.
pub const PRODUCT_SCHEMA_YAML: &str = "\
record: product
fields:
  product: str
  event: str
  station: str?
";

/// Supply-chain driver: registrations and lifecycle events share the
/// product's best-before expiry, so the whole trace self-erases.
#[derive(Debug, Clone)]
pub struct SupplyChain {
    ledger: SelectiveLedger,
    manufacturer: SigningKey,
    /// Product → (registration id, best-before).
    products: BTreeMap<String, (EntryId, Timestamp)>,
    now: Timestamp,
}

impl SupplyChain {
    /// Creates the workload with the given chain configuration.
    pub fn new(mut config: ChainConfig) -> SupplyChain {
        config.chain_note = "product lifecycle chain".to_string();
        let mut schemas = SchemaRegistry::new();
        schemas
            .register_yaml(PRODUCT_SCHEMA_YAML)
            .expect("static schema parses");
        let ledger = SelectiveLedger::builder(config).schemas(schemas).build();
        SupplyChain {
            ledger,
            manufacturer: SigningKey::from_seed([0x4D; 32]),
            products: BTreeMap::new(),
            now: Timestamp(0),
        }
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &SelectiveLedger {
        &self.ledger
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Registers a product with a best-before date; the record expires at
    /// that date and is cleaned up automatically.
    ///
    /// # Errors
    ///
    /// Propagates ledger intake failures.
    pub fn register(&mut self, product: &str, best_before: Timestamp) -> Result<(), CoreError> {
        let record = DataRecord::new("product")
            .with("product", product)
            .with("event", "registered");
        let entry = Entry::sign_data_with(
            &self.manufacturer,
            record,
            Some(Expiry::AtTimestamp(best_before)),
            vec![],
        );
        self.ledger.submit_entry(entry)?;
        // Remember the position the entry will get: next block, next index.
        let next_block = self.ledger.chain().tip().number().next();
        let index = self.ledger.stats().pending_entries as u32 - 1;
        self.products.insert(
            product.to_string(),
            (
                EntryId::new(next_block, seldel_chain::EntryNumber(index)),
                best_before,
            ),
        );
        Ok(())
    }

    /// Records a lifecycle event for a registered product; the event
    /// depends on the registration and inherits its best-before expiry.
    ///
    /// # Errors
    ///
    /// Unknown products are ledger `UnknownDependency` errors after the
    /// registration expired; fresh events propagate intake failures.
    pub fn record_event(
        &mut self,
        product: &str,
        event: &str,
        station: &str,
    ) -> Result<(), CoreError> {
        let (registration, best_before) = self
            .products
            .get(product)
            .copied()
            .ok_or(CoreError::TargetNotFound(EntryId::default()))?;
        let record = DataRecord::new("product")
            .with("product", product)
            .with("event", event)
            .with("station", station);
        let entry = Entry::sign_data_with(
            &self.manufacturer,
            record,
            Some(Expiry::AtTimestamp(best_before)),
            vec![registration],
        );
        self.ledger.submit_entry(entry)
    }

    /// Seals the next block, advancing time by `dt` ms.
    ///
    /// # Errors
    ///
    /// Propagates sealing errors.
    pub fn seal(&mut self, dt: u64) -> Result<(), CoreError> {
        self.now += dt;
        self.ledger.seal_block(self.now).map(|_| ())
    }

    /// Product names with at least one live record.
    pub fn live_products(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .ledger
            .chain()
            .live_records()
            .into_iter()
            .filter(|(_, r)| r.schema() == "product")
            .filter_map(|(_, r)| r.get("product").and_then(|v| v.as_str()).map(String::from))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Number of live lifecycle records for one product.
    pub fn trace_len(&self, product: &str) -> usize {
        self.ledger
            .chain()
            .live_records()
            .into_iter()
            .filter(|(_, r)| {
                r.schema() == "product"
                    && r.get("product").and_then(|v| v.as_str()) == Some(product)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SupplyChain {
        SupplyChain::new(ChainConfig::paper_evaluation())
    }

    #[test]
    fn full_trace_recorded() {
        let mut s = sim();
        s.register("gearbox-1", Timestamp(1_000)).unwrap();
        s.seal(10).unwrap();
        s.record_event("gearbox-1", "machined", "station-a")
            .unwrap();
        s.record_event("gearbox-1", "assembled", "station-b")
            .unwrap();
        s.seal(10).unwrap();
        assert_eq!(s.trace_len("gearbox-1"), 3);
        assert_eq!(s.live_products(), vec!["gearbox-1".to_string()]);
    }

    #[test]
    fn expired_products_clean_themselves_up() {
        let mut s = sim();
        s.register("milk-7", Timestamp(50)).unwrap();
        s.seal(10).unwrap();
        s.record_event("milk-7", "shipped", "dc-1").unwrap();
        s.seal(10).unwrap();
        s.register("engine-9", Timestamp(100_000)).unwrap();
        s.seal(10).unwrap();
        // Drive past the best-before date and through merge cycles.
        for _ in 0..20 {
            s.seal(10).unwrap();
        }
        assert!(s.now() > Timestamp(50));
        assert_eq!(s.trace_len("milk-7"), 0, "expired trace must be gone");
        assert_eq!(s.live_products(), vec!["engine-9".to_string()]);
        assert!(s.ledger().stats().expired_records >= 2);
    }

    #[test]
    fn events_for_unknown_product_fail() {
        let mut s = sim();
        assert!(s.record_event("ghost", "made", "x").is_err());
    }

    #[test]
    fn trace_survives_merges_until_expiry() {
        let mut s = sim();
        s.register("chassis-2", Timestamp(10_000)).unwrap();
        s.seal(10).unwrap();
        s.record_event("chassis-2", "welded", "station-w").unwrap();
        s.seal(10).unwrap();
        for _ in 0..15 {
            s.seal(10).unwrap();
        }
        // Chain was pruned but the trace lives on in summary records.
        assert!(s.ledger().chain().marker().value() > 0);
        assert_eq!(s.trace_len("chassis-2"), 2);
    }
}

//! Telemetry integration: the sim harnesses assert on *internals* the
//! public APIs don't expose — how many frames a recovery replayed, whether
//! a paged workload actually exercised the hot cache — by reading the
//! process-wide telemetry registry around a run.
//!
//! Every test that flips the global enable switch or resets the global
//! registry holds [`seldel_telemetry::testing::serial`] for its whole
//! body; the pure histogram/percentile cross-check does not touch global
//! state and needs no lock.

use proptest::prelude::*;

use seldel_chain::testutil::ScratchDir;
use seldel_chain::{
    Block, BlockBody, BlockNumber, BlockStore, Entry, FileStore, Seal, SealedBlock, Timestamp,
};
use seldel_codec::DataRecord;
use seldel_crypto::SigningKey;
use seldel_sim::{percentile, run_crash_restart, CrashConfig, CrashPoint};
use seldel_telemetry::{json_is_well_formed, Histogram, Registry};

// `sim::percentile` and `Histogram::quantile` implement the same
// nearest-rank definition, so the exact sample the former picks must lie
// in the bucket the latter resolves: for the rank-`k` value `v`,
// `quantile_bucket(p) == bucket_index(v)`. (Cumulative counts through
// `bucket_index(v) - 1` cover only values `< v`, i.e. fewer than `k`
// samples, and through `bucket_index(v)` at least `k`.)
proptest! {
    #[test]
    fn percentile_agrees_with_histogram_quantile_bucket(
        raw in proptest::collection::vec(any::<u64>(), 1..64),
        p_pick in any::<u64>(),
    ) {
        // Keep samples f64-exact so percentile() loses nothing round-tripping.
        let values: Vec<u64> = raw.iter().map(|v| v % (1 << 53)).collect();
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let ps = [0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
        let p = ps[(p_pick % ps.len() as u64) as usize];
        let exact = percentile(&floats, p) as u64;
        prop_assert_eq!(
            hist.quantile_bucket(p),
            Some(Histogram::bucket_index(exact)),
            "p={} exact={} n={}",
            p,
            exact,
            values.len()
        );
        // And the bucket-resolved quantile brackets the exact answer.
        let (lo, hi) = Histogram::bucket_range(Histogram::bucket_index(exact));
        prop_assert!(lo <= exact && exact <= hi);
        prop_assert!(hist.quantile(p) >= exact);
    }
}

/// A deferred-commit crash recovery streams the surviving frames back at
/// reopen; the `fstore.replay.frames` counter makes that count visible to
/// the harness even though no public API reports it.
#[test]
fn deferred_commit_recovery_reports_replayed_frames() {
    let _serial = seldel_telemetry::testing::serial();
    seldel_telemetry::set_enabled(true);
    Registry::global().reset();

    let dir = ScratchDir::new("telemetry-deferred");
    let report = run_crash_restart(
        dir.path(),
        &CrashConfig {
            point: CrashPoint::DeferredCommit,
            ..Default::default()
        },
    );
    let snap = Registry::global().snapshot();
    seldel_telemetry::set_enabled(false);

    // The phase-3 reopen replayed at least one surviving frame, and never
    // more frames than block numbers that existed at the recovered tip.
    let frames = snap
        .counter("fstore.replay.frames")
        .expect("replay counter registered");
    assert!(frames >= 1, "recovery replayed nothing: {snap:?}");
    assert!(
        frames <= report.recovered_tip + 1,
        "replayed {frames} frames but recovered tip is {}",
        report.recovered_tip
    );

    // Both opens (the pre-crash create and the recovery reopen) timed
    // their replay scans.
    let replay = snap
        .histogram("fstore.replay.ns")
        .expect("replay span registered");
    assert!(replay.count >= 2, "expected two timed opens: {replay:?}");

    // The whole snapshot renders as machine-readable JSON.
    let json = snap.render_json();
    assert!(json_is_well_formed(&json), "bad JSON: {json}");
}

fn sealed(n: u64, key: &SigningKey) -> SealedBlock {
    let entries = vec![Entry::sign_data(key, DataRecord::new("log").with("n", n))];
    SealedBlock::seal(Block::new(
        BlockNumber(n),
        Timestamp(n * 10),
        seldel_crypto::sha256(n.to_le_bytes()),
        BlockBody::Normal { entries },
        Seal::Deterministic,
    ))
}

/// A larger-than-cache scan both misses (cold page-ins) and hits (repeat
/// touches) the hot-block cache, and the churn evicts — all three visible
/// through the global registry.
#[test]
fn paged_workload_shows_cache_hits_misses_and_evictions() {
    let _serial = seldel_telemetry::testing::serial();
    seldel_telemetry::set_enabled(true);
    Registry::global().reset();

    let dir = ScratchDir::new("telemetry-paged");
    let key = SigningKey::from_seed([0x51; 32]);
    let mut store = FileStore::open_with_capacity(dir.path(), 4)
        .expect("store opens")
        .with_hot_cache_capacity(2);
    for n in 0..16 {
        store.push(sealed(n, &key));
    }
    // Sequential scan through a 2-block cache: mostly cold misses...
    for i in 0..16 {
        assert!(store.get(i).is_some());
    }
    // ...then repeat touches of the tail, which hit.
    for _ in 0..4 {
        assert!(store.get(15).is_some());
    }
    let snap = Registry::global().snapshot();
    seldel_telemetry::set_enabled(false);

    let hits = snap.counter("fstore.cache.hit").unwrap_or(0);
    let misses = snap.counter("fstore.cache.miss").unwrap_or(0);
    let evicts = snap.counter("fstore.cache.evict").unwrap_or(0);
    assert!(hits > 0, "no cache hits recorded: {snap:?}");
    assert!(misses > 0, "no cache misses recorded: {snap:?}");
    assert!(evicts > 0, "no evictions recorded: {snap:?}");
    // Telemetry agrees with the store's own introspection counters.
    assert_eq!(hits, store.hot_cache_hits());
    assert_eq!(misses, store.hot_cache_misses());
}

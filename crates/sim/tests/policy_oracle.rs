//! Policy erasure ≡ sequential oracle: one bulk [`apply_policy`] and a
//! one-at-a-time [`request_deletion`] loop over the same plan must be
//! indistinguishable on-chain — the same blocks byte for byte, the same
//! Merkle payload roots, the same entry index and Σ records — on every
//! storage backend and shard count. The bulk path earns its existence
//! purely as an ergonomic/performance front door; the moment it could
//! produce a chain the sequential path could not, replicas replaying one
//! side would diverge from replicas replaying the other.
//!
//! [`apply_policy`]: seldel_core::SelectiveLedger::apply_policy
//! [`request_deletion`]: seldel_core::SelectiveLedger::request_deletion

use rand::{rngs::StdRng, RngExt, SeedableRng};
use seldel_chain::testutil::ScratchDir;
use seldel_chain::{BlockStore, FileStore, MemStore, SegStore, Timestamp};
use seldel_core::{CompiledPolicy, Role, RoleTable, SelectiveLedger, Selector};
use seldel_crypto::SigningKey;
use seldel_sim::{drive_multi_tenant, tenant_chain_config, TenantConfig};

/// The workload's tenant key derivation (rank ↦ deterministic seed),
/// mirrored so the policy can name authors the workload actually uses.
fn tenant_key(rank: usize) -> SigningKey {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&(rank as u64 + 1).to_le_bytes());
    seed[31] = 0xA7;
    SigningKey::from_seed(seed)
}

/// The compliance officer allowed to erase foreign records.
fn admin_key() -> SigningKey {
    SigningKey::from_seed([0xAD; 32])
}

fn oracle_cfg(shards: usize) -> TenantConfig {
    TenantConfig {
        authors: 12,
        zipf_s: 1.0,
        blocks: 48,
        entries_per_block: 5,
        delete_every: 9,
        query_batch: 0,
        sequence_length: 4,
        l_max: 24,
        max_block_entries: None,
        shards,
        seed: 0xBEEF,
    }
}

/// Erase the hot tenant and one mid-tail tenant, but only records old
/// enough to have been carried through at least one summary merge — so
/// the sweep exercises both normal and Σ blocks.
fn sweep_policy() -> CompiledPolicy {
    Selector::And(vec![
        Selector::AuthorIn(vec![
            tenant_key(0).verifying_key(),
            tenant_key(3).verifying_key(),
        ]),
        Selector::OlderThan(Timestamp(30 * 10)),
    ])
    .compile("oracle-sweep")
    .expect("well-formed selector")
}

fn build_ledger<S: BlockStore>(cfg: &TenantConfig) -> SelectiveLedger<S> {
    SelectiveLedger::builder(tenant_chain_config(cfg))
        .roles(RoleTable::new().with(admin_key().verifying_key(), Role::Admin))
        .shards(cfg.shards)
        .store_backend::<S>()
        .build()
}

/// Drives the same workload into both ledgers, erases via the bulk policy
/// path on one and the sequential oracle on the other, runs both to
/// physical pruning on identical clocks, and asserts the chains are
/// bit-identical. Returns the final export for cross-combo comparison.
fn run_pair<A: BlockStore, B: BlockStore>(
    via_policy: SelectiveLedger<A>,
    via_oracle: SelectiveLedger<B>,
    cfg: &TenantConfig,
) -> Vec<u8> {
    let (mut via_policy, report_p) = drive_multi_tenant(via_policy, cfg);
    let (mut via_oracle, report_o) = drive_multi_tenant(via_oracle, cfg);
    assert_eq!(report_p, report_o, "workload itself diverged");

    let admin = admin_key();
    let policy = sweep_policy();

    let applied = via_policy
        .apply_policy(&admin, &policy)
        .expect("admin bulk erasure is authorised");
    assert!(
        applied.len() >= 2,
        "the policy must bite for the test to mean anything: {applied:?}"
    );

    // The oracle sees the identical plan, then issues each deletion the
    // pedestrian way, in the plan's (sorted) order and with the policy's
    // own reason string.
    let planned = via_oracle.plan_policy(&admin.verifying_key(), &policy);
    assert_eq!(
        applied, planned,
        "apply reported a different plan than dry-run"
    );
    for id in planned.matched() {
        via_oracle
            .request_deletion(&admin, *id, policy.reason())
            .expect("every planned id validates individually");
    }

    // Identical clocks through marking, execution at the merge, and
    // physical pruning of the retired sequences.
    let mut now = cfg.blocks * 10;
    for _ in 0..(cfg.l_max + 2 * cfg.sequence_length) {
        now += 10;
        via_policy
            .seal_block(Timestamp(now))
            .expect("monotone time");
        via_oracle
            .seal_block(Timestamp(now))
            .expect("monotone time");
    }

    // Both sides physically erased every matched record...
    assert!(via_policy.audit_live(applied.matched()).iter().all(|l| !l));
    assert!(via_oracle.audit_live(applied.matched()).iter().all(|l| !l));

    // ...and the chains are indistinguishable: bytes, tip, per-block
    // Merkle commitments, and a from-scratch index rebuild.
    let bytes_p = via_policy.chain().export_bytes();
    let bytes_o = via_oracle.chain().export_bytes();
    assert_eq!(
        bytes_p, bytes_o,
        "bulk apply and sequential oracle diverged"
    );
    assert_eq!(via_policy.chain().tip_hash(), via_oracle.chain().tip_hash());
    for (p, o) in via_policy.chain().iter().zip(via_oracle.chain().iter()) {
        assert_eq!(
            p.header().payload_hash,
            o.header().payload_hash,
            "Merkle roots diverge at block {}",
            p.number()
        );
    }
    assert_eq!(
        via_policy.chain().entry_index(),
        &via_policy.chain().rebuilt_index()
    );
    assert_eq!(
        via_oracle.chain().entry_index(),
        &via_oracle.chain().rebuilt_index()
    );
    bytes_p
}

#[test]
fn bulk_policy_apply_is_indistinguishable_from_a_sequential_oracle() {
    // One deliberate shard count and one drawn at random: the equivalence
    // must hold wherever the shard map happens to land the hot authors.
    let mut rng = StdRng::seed_from_u64(0x0513);
    let random_shards = 1usize << rng.random_range(1..=4u32);
    let mut exports: Vec<(String, Vec<u8>)> = Vec::new();

    for shards in [1, random_shards] {
        let cfg = oracle_cfg(shards);
        let bytes = run_pair(
            build_ledger::<MemStore>(&cfg),
            build_ledger::<MemStore>(&cfg),
            &cfg,
        );
        exports.push((format!("mem/{shards}"), bytes));
    }

    let cfg = oracle_cfg(random_shards);
    let bytes = run_pair(
        build_ledger::<SegStore>(&cfg),
        build_ledger::<SegStore>(&cfg),
        &cfg,
    );
    exports.push((format!("seg/{random_shards}"), bytes));

    // Durable pair — and deliberately mixed backends: the FileStore bulk
    // side must match the MemStore oracle too.
    let scratch = ScratchDir::new("policy-oracle");
    let durable = SelectiveLedger::builder(tenant_chain_config(&cfg))
        .roles(RoleTable::new().with(admin_key().verifying_key(), Role::Admin))
        .shards(cfg.shards)
        .store_backend::<FileStore>()
        .on_disk(scratch.path())
        .expect("fresh store opens");
    let bytes = run_pair(durable, build_ledger::<MemStore>(&cfg), &cfg);
    exports.push((format!("file/{random_shards}"), bytes));

    // Backends and shard counts are invisible to the sealed chain, so
    // every combination must have produced the very same bytes.
    let (first_tag, first) = &exports[0];
    for (tag, bytes) in &exports[1..] {
        assert_eq!(bytes, first, "{tag} diverged from {first_tag}");
    }
}

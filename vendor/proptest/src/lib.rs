//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment is offline, so the real crates.io `proptest` is
//! unavailable. This shim keeps the same surface syntax — the [`proptest!`]
//! macro with `arg in strategy` bindings, [`Strategy::prop_map`],
//! [`prop_oneof!`] with optional weights, `any::<T>()`, ranges and string
//! "regexes" as strategies, and the [`collection`] / [`option`] modules —
//! but implements plain randomised testing:
//!
//! * cases are sampled from a generator seeded deterministically from the
//!   test's module path and name, so every run explores the same inputs and
//!   a failure is always reproducible with `cargo test`;
//! * there is **no shrinking**: a failing case panics with the regular
//!   assertion message (the `prop_assert*` macros are plain `assert*`).
//!
//! The default number of cases per property is 64; override per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-property configuration (a subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run for each property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    ///
    /// When `PROPTEST_SEED` is set in the environment its value is folded
    /// into the seed, perturbing every test's generator stream — the hook
    /// CI uses to run the suite once with the fixed name-derived seeds and
    /// once randomized.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            for byte in seed.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.inner.random_range(0..bound)
    }

    fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.below(denom as u64) < num as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies with a common value type (see
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights changed during generation")
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix plain uniform values with boundary-ish small values so
                // edge cases appear with reasonable probability even without
                // shrinking.
                if rng.chance(1, 8) {
                    let picks: [$t; 4] = [0 as $t, 1 as $t, <$t>::MAX, <$t>::MAX - 1];
                    picks[rng.below(4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for byte in &mut out {
            *byte = rng.next_u64() as u8;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ranges, strings and tuples as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

mod regex {
    //! Generation from the tiny regex subset the workspace's string
    //! strategies use: literals, `[...]` character classes (with `a-z`
    //! ranges), and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.

    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut entries: Vec<(char, char)> = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("checked");
                                // Pop the single entry pushed for `lo`.
                                entries.pop();
                                let hi = chars.next().expect("range end");
                                entries.push((lo, hi));
                            }
                            '\\' => {
                                let c = chars.next().expect("escaped char");
                                entries.push((c, c));
                                prev = Some(c);
                            }
                            other => {
                                entries.push((other, other));
                                prev = Some(other);
                            }
                        }
                    }
                    Atom::Class(entries)
                }
                '\\' => Atom::Literal(chars.next().expect("escaped char")),
                other => Atom::Literal(other),
            };

            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse::<usize>().expect("repeat lower bound"),
                            hi.parse::<usize>().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = spec.parse::<usize>().expect("repeat count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };

            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(entries) => {
                        let total: u64 = entries
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in entries {
                            let span = (*hi as u64) - (*lo as u64) + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick as u32).expect("char"));
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// A map with `size.start ..= size.end - 1` distinct keys (best effort —
    /// key collisions may produce slightly smaller maps).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts so colliding key strategies cannot loop
            // forever; the map may come out smaller than `target`.
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(3, 4) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ( $($arg,)* ) =
                    ( $( $crate::Strategy::generate(&($strategy), &mut __rng), )* );
                $body
            }
        }
    )*};
}

/// Like `assert!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn string_strategy_matches_pattern() {
        let mut rng = TestRng::from_name("string_strategy_matches_pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,11}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_literal_dot_dash() {
        let mut rng = TestRng::from_name("class_with_literal_dot_dash");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9 _.-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let sa: Vec<u64> = (0..8)
            .map(|_| Strategy::generate(&(0u64..1000), &mut a))
            .collect();
        let sb: Vec<u64> = (0..8)
            .map(|_| Strategy::generate(&(0u64..1000), &mut b))
            .collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(x in 0u8..10, y in any::<bool>(), s in "[a-z]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!(usize::from(y) <= 1);
            prop_assert!((1..=3).contains(&s.len()));
        }
    }

    proptest! {
        #[test]
        fn oneof_weights_cover_all_arms(v in prop_oneof![
            2 => Just(0u8),
            1 => Just(1u8),
        ]) {
            prop_assert!(v <= 1);
        }
    }
}

//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use.
//!
//! The build environment is offline, so instead of the crates.io harness we
//! ship a small wall-clock measurer with the same calling surface:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`] and
//! [`BenchmarkId`].
//!
//! Behaviour matches criterion's contract with cargo:
//!
//! * `cargo bench` passes `--bench`: each benchmark is warmed up and then
//!   measured for the configured time; a mean ns/iter (plus derived
//!   throughput where declared) is printed.
//! * `cargo test` runs the executable *without* `--bench`: each benchmark
//!   body executes exactly once as a smoke test, so benches stay correct
//!   without slowing the test suite.
//!
//! There are no statistics, plots or baselines — this is a measurement
//! stub, not an analysis framework.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always materialises one input per routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Declared work per iteration, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to every benchmark closure; drives the measured loop.
pub struct Bencher<'a> {
    mode: Mode,
    settings: &'a Settings,
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    mean_ns: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run the body once (under `cargo test`).
    Test,
    /// Warm up and measure (under `cargo bench`).
    Measure,
}

impl Bencher<'_> {
    /// Measures `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                routine();
            }
            Mode::Measure => {
                // Warm-up: run until the warm-up time elapses, counting
                // iterations to size the measurement batches.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < self.settings.warm_up {
                    routine();
                    warm_iters += 1;
                }
                // Size the measured run from the *actual* elapsed warm-up
                // time (a slow routine can blow well past the warm-up
                // budget in its first iteration).
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                let budget = self.settings.measurement.as_secs_f64();
                let total_iters = ((budget / per_iter.max(1e-9)) as u64)
                    .clamp(self.settings.sample_size as u64, 10_000_000);
                let start = Instant::now();
                for _ in 0..total_iters {
                    routine();
                }
                self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
            }
        }
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the reported mean.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                routine(setup());
            }
            Mode::Measure => {
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < self.settings.warm_up {
                    let input = setup();
                    routine(input);
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                let budget = self.settings.measurement.as_secs_f64();
                let total_iters = ((budget / per_iter.max(1e-9)) as u64)
                    .clamp(self.settings.sample_size as u64, 1_000_000);
                let mut measured = Duration::ZERO;
                for _ in 0..total_iters {
                    let input = setup();
                    let start = Instant::now();
                    routine(input);
                    measured += start.elapsed();
                }
                self.mean_ns = measured.as_nanos() as f64 / total_iters as f64;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    settings: Settings,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Per cargo's contract, bench executables receive `--bench` only
        // under `cargo bench`; under `cargo test` each body runs once.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            settings: Settings::default(),
            mode: if measure { Mode::Measure } else { Mode::Test },
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.settings.measurement = time;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.settings.warm_up = time;
        self
    }

    /// Sets the minimum iteration count per measurement.
    pub fn sample_size(mut self, size: usize) -> Self {
        self.settings.sample_size = size;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let settings = self.settings.clone();
        run_one(&id.into_id(), self.mode, &settings, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the minimum iteration count for this group.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = Some(size);
        self
    }

    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut settings = self.criterion.settings.clone();
        if let Some(size) = self.sample_size {
            settings.sample_size = size;
        }
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, self.criterion.mode, &settings, self.throughput, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(id: &str, mode: Mode, settings: &Settings, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut bencher = Bencher {
        mode,
        settings,
        mean_ns: f64::NAN,
    };
    f(&mut bencher);
    match mode {
        Mode::Test => println!("test {id} ... ok (ran once)"),
        Mode::Measure => {
            let mean = bencher.mean_ns;
            let rate = match throughput {
                Some(Throughput::Elements(n)) if mean > 0.0 => {
                    format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
                }
                Some(Throughput::Bytes(n)) if mean > 0.0 => {
                    format!(
                        "  {:>12.1} MiB/s",
                        n as f64 * 1e9 / mean / (1024.0 * 1024.0)
                    )
                }
                _ => String::new(),
            };
            println!("{id:<48} {mean:>14.1} ns/iter{rate}");
        }
    }
}

/// Declares a group of benchmark functions, optionally with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench executable's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut criterion = Criterion {
            settings: Settings::default(),
            mode: Mode::Test,
        };
        let mut runs = 0u32;
        criterion.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_a_mean() {
        let mut criterion = Criterion {
            settings: Settings {
                sample_size: 10,
                measurement: Duration::from_millis(20),
                warm_up: Duration::from_millis(5),
            },
            mode: Mode::Measure,
        };
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("add", 4), |b| {
            b.iter(|| std::hint::black_box(2u64 + 2))
        });
        group.finish();
    }

    #[test]
    fn batched_setup_excluded_from_mean() {
        let mut criterion = Criterion {
            settings: Settings::default(),
            mode: Mode::Test,
        };
        let mut setups = 0u32;
        let mut runs = 0u32;
        criterion.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |_| runs += 1, BatchSize::SmallInput)
        });
        assert_eq!((setups, runs), (1, 1));
    }
}

//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment is fully offline, so instead of the crates.io
//! `rand` we ship this minimal shim: a seedable xoshiro256** generator
//! ([`rngs::StdRng`]) behind the [`SeedableRng`] / [`RngExt`] traits, with
//! uniform range sampling for the integer and float ranges the simulator,
//! consensus election and attack models draw from.
//!
//! Everything is deterministic by construction — `StdRng::seed_from_u64`
//! with the same seed yields the same stream on every platform — which is
//! exactly the property `seldel-network` and `seldel-sim` rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a simple numeric seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the conventional seeding scheme for
    /// xoshiro generators).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty, mirroring `rand`'s behaviour.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> RngExt for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound` that fits in
    // a u64, so the distribution is exactly uniform.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + sample_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Not cryptographically secure — it backs simulations and elections,
    /// never key material (keys come from `seldel-crypto`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX - 1),
                b.random_range(0u64..=u64::MAX - 1)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random_range(0u64..=u64::MAX - 1) == b.random_range(0u64..=u64::MAX - 1))
            .count();
        assert!(same < 4);
    }
}
